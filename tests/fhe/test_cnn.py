"""Differential suite for the encrypted CNN compiler.

Three rings of verification, cheapest first:

* **pure-numpy lowering differentials** (hypothesis-driven): the
  compile-time conv/linear matrices and rotate-and-sum pool plans are
  checked against ``repro.nn.functional`` on random shapes — no crypto,
  hundreds of examples;
* **encrypted layer differentials**: small convs/pools/BN-affines run on
  real ciphertexts against the plaintext forward;
* **the trained toy CNN end to end**: compiled logits match the
  plaintext model within rtol 1e-3, single and SIMD-batched through
  :class:`repro.serve.artifact.ModelArtifact`, with the level schedule
  consumed exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import CkksParams
from repro.fhe.cnn import (
    avg_pool_shifts,
    bn_affine_vectors,
    compile_cnn,
    conv2d_layout_matrix,
    fold_bn_into_conv,
    linear_layout_matrix,
)
from repro.fhe.packing import GridLayout
from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Sequential
from repro.nn.tensor import Tensor
from repro.serve.artifact import ModelArtifact


# ----------------------------------------------------------------------
# GridLayout geometry
# ----------------------------------------------------------------------
class TestGridLayout:
    def test_dense_positions_are_flat_nchw(self):
        g = GridLayout.dense(2, 3, 4)
        np.testing.assert_array_equal(g.positions().ravel(), np.arange(24))
        assert g.span == g.num_elements == 24

    def test_pooled_strides_and_extent(self):
        g = GridLayout.dense(2, 8, 8).pooled(2, 2)
        assert (g.height, g.width) == (4, 4)
        assert (g.row_stride, g.col_stride) == (16, 2)
        assert g.chan_stride == 64
        # element (c=1, h=2, w=3) sits at the dense parent's (4, 6) corner
        assert g.slot_of(1, 2, 3) == 64 + 2 * 16 + 3 * 2

    def test_global_pooled_one_slot_per_channel(self):
        g = GridLayout.dense(3, 4, 4).global_pooled()
        np.testing.assert_array_equal(g.positions().ravel(), [0, 16, 32])

    def test_pool_window_larger_than_grid_rejected(self):
        with pytest.raises(ValueError):
            GridLayout.dense(1, 2, 2).pooled(3, 1)

    def test_non_injective_layout_rejected(self):
        with pytest.raises(ValueError):
            GridLayout(channels=2, height=2, width=2,
                       chan_stride=1, row_stride=1, col_stride=1)


# ----------------------------------------------------------------------
# pure-numpy lowering differentials (no crypto)
# ----------------------------------------------------------------------
def _slot_vector(x_chw: np.ndarray, layout: GridLayout, slots: int) -> np.ndarray:
    """Scatter a (C, H, W) activation into its layout's slot positions."""
    vec = np.zeros(slots)
    vec[layout.positions().ravel()] = x_chw.ravel()
    return vec


conv_shapes = st.tuples(
    st.integers(1, 3),   # in channels
    st.integers(1, 3),   # out channels
    st.integers(3, 6),   # H = W
    st.integers(1, 3),   # kernel
    st.integers(1, 2),   # stride
    st.integers(0, 1),   # padding
)


class TestConvLowering:
    @settings(max_examples=60, deadline=None)
    @given(conv_shapes, st.integers(0, 10_000))
    def test_matrix_matches_functional_conv(self, shape, seed):
        ic, oc, hw, k, stride, padding = shape
        if k > hw + 2 * padding:
            return
        rng = np.random.default_rng(seed)
        conv = Conv2d(ic, oc, k, stride=stride, padding=padding, rng=rng)
        conv.bias.data = rng.normal(size=oc)
        x = rng.normal(size=(1, ic, hw, hw))
        ref = F.conv2d(
            Tensor(x), conv.weight, conv.bias, stride, padding
        ).data.ravel()

        layout = GridLayout.dense(ic, hw, hw)
        mat, bias_vec, out_layout = conv2d_layout_matrix(
            conv.weight.data, conv.bias.data, layout, stride=stride, padding=padding
        )
        got = mat @ _slot_vector(x[0], layout, layout.span) + bias_vec
        np.testing.assert_allclose(got, ref, atol=1e-10)
        assert out_layout.num_elements == len(ref)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 2), st.integers(4, 8), st.integers(0, 10_000))
    def test_conv_composes_with_strided_pool_layout(self, ic, hw, seed):
        """A conv lowered against a pooled (strided) grid reads the window
        corners — garbage columns between them are exactly zero."""
        if hw % 2:
            hw += 1
        rng = np.random.default_rng(seed)
        conv = Conv2d(ic, 2, 3, padding=1, rng=rng)
        dense = GridLayout.dense(ic, hw, hw)
        strided = dense.pooled(2, 2)
        mat, _, _ = conv2d_layout_matrix(
            conv.weight.data, None, strided, stride=1, padding=1
        )
        # plaintext reference on the pooled (compacted) activation
        x_small = rng.normal(size=(1, ic, hw // 2, hw // 2))
        ref = F.conv2d(Tensor(x_small), conv.weight, None, 1, 1).data.ravel()
        # scatter the compacted activation to the strided corners, add
        # garbage everywhere else: the matrix must ignore it
        vec = rng.normal(size=strided.span)  # garbage baseline
        vec[strided.positions().ravel()] = x_small.ravel()
        np.testing.assert_allclose(mat @ vec, ref, atol=1e-10)

    def test_channel_mismatch_rejected(self):
        conv = Conv2d(2, 1, 3)
        with pytest.raises(ValueError):
            conv2d_layout_matrix(conv.weight.data, None, GridLayout.dense(1, 4, 4))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 5), st.integers(2, 4), st.integers(0, 10_000))
    def test_linear_reads_layout_positions(self, out_f, c, seed):
        rng = np.random.default_rng(seed)
        layout = GridLayout.dense(c, 4, 4).pooled(2, 2)
        w = rng.normal(size=(out_f, layout.num_elements))
        mat = linear_layout_matrix(w, layout.positions().ravel())
        x = rng.normal(size=layout.num_elements)
        vec = np.zeros(mat.shape[1])
        vec[layout.positions().ravel()] = x
        np.testing.assert_allclose(mat @ vec, w @ x, atol=1e-12)


def _rotate_and_sum(vec: np.ndarray, shifts: tuple, pool_scale: float) -> np.ndarray:
    """Numpy model of the encrypted pool: left-rotations + masked scalar."""
    for stage in shifts:
        acc = vec.copy()
        for s in stage:
            acc += np.roll(vec, -s)
        vec = acc
    return vec * pool_scale


class TestPoolLowering:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 3),               # channels
        st.sampled_from([(4, 2, 2), (6, 2, 2), (6, 3, 3), (8, 2, 2), (8, 4, 4)]),
        st.integers(0, 10_000),
    )
    def test_rotate_and_sum_matches_avg_pool_at_corners(self, c, geom, seed):
        hw, k, stride = geom
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, c, hw, hw))
        ref = F.avg_pool2d(Tensor(x), k, stride).data.ravel()

        layout = GridLayout.dense(c, hw, hw)
        shifts = avg_pool_shifts(layout, k, k)
        vec = np.zeros(2 * layout.span)  # data + zero tail (replica stand-in)
        vec[: layout.span] = x.ravel()
        summed = _rotate_and_sum(vec, shifts, 1.0 / (k * k))
        got = summed[layout.pooled(k, stride).positions().ravel()]
        np.testing.assert_allclose(got, ref, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 3), st.integers(2, 5), st.integers(0, 10_000))
    def test_global_pool_matches_at_channel_slots(self, c, hw, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, c, hw, hw))
        ref = F.global_avg_pool2d(Tensor(x)).data.ravel()
        layout = GridLayout.dense(c, hw, hw)
        shifts = avg_pool_shifts(layout, hw, hw)
        vec = np.zeros(2 * layout.span)
        vec[: layout.span] = x.ravel()
        summed = _rotate_and_sum(vec, shifts, 1.0 / (hw * hw))
        got = summed[layout.global_pooled().positions().ravel()]
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_stacked_pools_compose(self):
        """Pool-of-pool: the second pool's shifts follow the strided grid."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 8, 8))
        ref = F.avg_pool2d(F.avg_pool2d(Tensor(x), 2, 2), 2, 2).data.ravel()
        layout = GridLayout.dense(2, 8, 8)
        vec = np.zeros(2 * layout.span)
        vec[: layout.span] = x.ravel()
        vec = _rotate_and_sum(vec, avg_pool_shifts(layout, 2, 2), 0.25)
        layout = layout.pooled(2, 2)
        vec = _rotate_and_sum(vec, avg_pool_shifts(layout, 2, 2), 0.25)
        layout = layout.pooled(2, 2)
        got = vec[layout.positions().ravel()]
        np.testing.assert_allclose(got, ref, atol=1e-10)


def _frozen_bn(features: int, seed: int) -> BatchNorm2d:
    rng = np.random.default_rng(seed)
    bn = BatchNorm2d(features, track_running_stats=True)
    bn.gamma.data = rng.uniform(0.5, 1.5, size=features)
    bn.beta.data = rng.normal(size=features)
    bn.running_mean[:] = rng.normal(size=features)
    bn.running_var[:] = rng.uniform(0.5, 2.0, size=features)
    bn.training = False
    return bn


class TestBnFolding:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(0, 10_000))
    def test_folded_conv_matches_bn_of_conv(self, ic, oc, seed):
        rng = np.random.default_rng(seed)
        conv = Conv2d(ic, oc, 3, padding=1, rng=rng)
        conv.bias.data = rng.normal(size=oc)
        bn = _frozen_bn(oc, seed + 1)
        x = rng.normal(size=(2, ic, 5, 5))
        ref = bn(conv(Tensor(x))).data

        w, b = fold_bn_into_conv(conv.weight.data, conv.bias.data, bn)
        got = F.conv2d(Tensor(x), Tensor(w), Tensor(b), 1, 1).data
        np.testing.assert_allclose(got, ref, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 3), st.integers(0, 10_000))
    def test_affine_vectors_match_bn(self, c, seed):
        rng = np.random.default_rng(seed)
        bn = _frozen_bn(c, seed)
        layout = GridLayout.dense(c, 4, 4)
        scale_vec, shift_vec = bn_affine_vectors(bn, layout)
        x = rng.normal(size=(1, c, 4, 4))
        ref = bn(Tensor(x)).data.ravel()
        got = scale_vec * x.ravel() + shift_vec
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_batch_stat_bn_rejected(self):
        conv = Conv2d(1, 2, 3)
        bn = BatchNorm2d(2)  # track_running_stats=False: data-dependent
        with pytest.raises(ValueError, match="track_running_stats"):
            fold_bn_into_conv(conv.weight.data, None, bn)


# ----------------------------------------------------------------------
# encrypted layer differentials (real ciphertexts, small ring)
# ----------------------------------------------------------------------
def _mini_paf_net(*layers):
    """Wrap layers in a Sequential; no activation (tested separately)."""
    return Sequential(*layers)


MINI_PARAMS = CkksParams(n=256, scale_bits=25, depth=3)


class TestEncryptedDifferentials:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_encrypted_conv_pool_dense_matches_plaintext(self, seed):
        rng = np.random.default_rng(seed)
        model = _mini_paf_net(
            Conv2d(1, 2, 3, padding=1, rng=rng),
            AvgPool2d(2),
            Flatten(),
            Linear(8, 3, rng=rng),
        )
        model.eval()
        enc = compile_cnn(model, (1, 4, 4), MINI_PARAMS, seed=0)
        x = rng.normal(size=(1, 1, 4, 4))
        ref = model(Tensor(x)).data.ravel()
        got = enc.decrypt_logits(enc.forward(enc.encrypt_input(x.ravel())), 3)
        np.testing.assert_allclose(got, ref, atol=2e-3)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_encrypted_bn_folded_vs_unfolded(self, seed):
        """The same conv-BN net compiled both ways decrypts to the same
        values; the unfolded affine costs exactly one extra level."""
        rng = np.random.default_rng(seed)
        conv = Conv2d(1, 2, 3, padding=1, rng=rng)
        bn = _frozen_bn(2, seed)
        model = _mini_paf_net(conv, bn, Flatten(), Linear(32, 3, rng=rng))
        model.eval()
        x = rng.normal(size=16)
        outs = {}
        levels = {}
        for fold in (True, False):
            enc = compile_cnn(model, (1, 4, 4), MINI_PARAMS, seed=0, fold_bn=fold)
            ct = enc.forward(enc.encrypt_input(x))
            outs[fold] = enc.decrypt_logits(ct, 3)
            levels[fold] = enc.ctx.max_level - ct.level
        np.testing.assert_allclose(outs[True], outs[False], atol=2e-3)
        assert levels[False] == levels[True] + 1
        ref = model(Tensor(x.reshape(1, 1, 4, 4))).data.ravel()
        np.testing.assert_allclose(outs[True], ref, atol=2e-3)

    def test_encrypted_global_pool_head(self):
        """Global pool straight into the head: the compiler flattens
        implicitly (the plaintext reference needs an explicit Flatten)."""
        rng = np.random.default_rng(7)
        conv = Conv2d(1, 2, 3, padding=1, rng=rng)
        head = Linear(2, 3, rng=rng)
        plain = _mini_paf_net(conv, GlobalAvgPool2d(), Flatten(), head)
        plain.eval()
        compiled = _mini_paf_net(conv, GlobalAvgPool2d(), head)
        compiled.eval()
        enc = compile_cnn(compiled, (1, 4, 4), MINI_PARAMS, seed=0)
        x = rng.normal(size=(1, 1, 4, 4))
        ref = plain(Tensor(x)).data.ravel()
        got = enc.decrypt_logits(enc.forward(enc.encrypt_input(x.ravel())), 3)
        np.testing.assert_allclose(got, ref, atol=2e-3)

    def test_reference_pool_path_matches_planned(self):
        """mode="reference" rotates one by one — same values, same sums."""
        rng = np.random.default_rng(3)
        model = _mini_paf_net(
            Conv2d(1, 1, 3, padding=1, rng=rng), AvgPool2d(2),
            Flatten(), Linear(4, 2, rng=rng),
        )
        model.eval()
        enc = compile_cnn(model, (1, 4, 4), MINI_PARAMS, seed=0, reference_keys=True)
        x = rng.normal(size=16)
        planned = enc.decrypt_logits(enc.forward(enc.encrypt_input(x)), 2)
        reference = enc.decrypt_logits(
            enc.forward(enc.encrypt_input(x), mode="reference"), 2
        )
        np.testing.assert_allclose(planned, reference, atol=1e-4)


class TestCompilerRejections:
    def test_exact_relu_rejected(self):
        model = Sequential(Conv2d(1, 1, 3), ReLU())
        with pytest.raises(TypeError, match="exact ReLU"):
            compile_cnn(model, (1, 4, 4), MINI_PARAMS)

    def test_exact_maxpool_rejected(self):
        model = Sequential(Conv2d(1, 1, 3), MaxPool2d(2))
        with pytest.raises(TypeError, match="MaxPool2d"):
            compile_cnn(model, (1, 4, 4), MINI_PARAMS)

    def test_paf_maxpool_not_implemented(self):
        from repro.core.paf_layer import PAFMaxPool2d
        from repro.paf import get_paf

        model = Sequential(
            Conv2d(1, 1, 3), PAFMaxPool2d(get_paf("f1g2"), kernel_size=2)
        )
        with pytest.raises(NotImplementedError, match="max-pool"):
            compile_cnn(model, (1, 4, 4), MINI_PARAMS)

    def test_conv_after_flatten_rejected(self):
        model = Sequential(Flatten(), Conv2d(1, 1, 3))
        with pytest.raises(TypeError, match="flattened"):
            compile_cnn(model, (1, 4, 4), MINI_PARAMS)

    def test_bad_input_shape_rejected(self):
        with pytest.raises(ValueError, match="C, H, W"):
            compile_cnn(Sequential(Conv2d(1, 1, 3)), (4, 4), MINI_PARAMS)

    def test_unknown_leaf_rejected_not_silently_dropped(self):
        """A layer without an encrypted lowering must fail the compile —
        skipping it would decrypt to wrong logits with no error."""
        from repro.nn.module import Module

        class Swish(Module):
            def forward(self, x):
                return x

        model = Sequential(Conv2d(1, 1, 3), Swish())
        with pytest.raises(TypeError, match="no encrypted lowering"):
            compile_cnn(model, (1, 4, 4), MINI_PARAMS)

    def test_dropout_and_identity_are_skipped(self):
        from repro.nn.layers import Dropout, Identity

        rng = np.random.default_rng(5)
        model = Sequential(
            Conv2d(1, 1, 3, padding=1, rng=rng), Dropout(0.5), Identity(),
            Flatten(), Linear(16, 2, rng=rng),
        )
        model.eval()
        enc = compile_cnn(model, (1, 4, 4), MINI_PARAMS, seed=0)
        x = rng.normal(size=16)
        ref = model(Tensor(x.reshape(1, 1, 4, 4))).data.ravel()
        got = enc.decrypt_logits(enc.forward(enc.encrypt_input(x)), 2)
        np.testing.assert_allclose(got, ref, atol=2e-3)


# ----------------------------------------------------------------------
# the trained toy CNN, end to end (session-scoped compile)
# ----------------------------------------------------------------------
class TestToyCnnEndToEnd:
    def test_single_request_matches_plaintext_logits(self, toy_cnn):
        model, enc = toy_cnn
        rng = np.random.default_rng(11)
        x = rng.normal(size=(1, 1, 8, 8))
        ref = model(Tensor(x)).data.ravel()
        got = enc.decrypt_logits(enc.forward(enc.encrypt_input(x.ravel())), 3)
        np.testing.assert_allclose(got, ref, rtol=1e-3, atol=1e-4)

    def test_batched_via_serve_artifact(self, toy_cnn):
        """The acceptance path: SIMD-batched requests through the
        pre-encoded ModelArtifact match per-row plaintext logits."""
        model, enc = toy_cnn
        rng = np.random.default_rng(12)
        xs = [rng.normal(size=64) for _ in range(enc.max_batch)]
        ref = model(Tensor(np.stack(xs).reshape(-1, 1, 8, 8))).data
        artifact = ModelArtifact(enc)
        artifact.prewarm_activations()
        ct = enc.encrypt_batch(xs)
        out = artifact.forward(ct)
        got = enc.decrypt_logits(out, 3, batch=len(xs))
        np.testing.assert_allclose(got, ref, rtol=1e-3, atol=1e-4)
        # steady state: a second identical batch hits only cached plaintexts
        misses_before = artifact.cache.misses
        artifact.forward(enc.encrypt_batch(xs))
        assert artifact.cache.misses == misses_before

    def test_level_schedule_consumed_exactly(self, toy_cnn):
        _, enc = toy_cnn
        ct = enc.forward(enc.encrypt_input(np.zeros(64)))
        depth_needed = sum(layer.level_cost() for layer in enc.layers)
        assert enc.ctx.max_level - ct.level == depth_needed == 10

    def test_layer_input_levels_match_kind_costs(self, toy_cnn):
        _, enc = toy_cnn
        levels = enc.layer_input_levels()
        kinds = [layer.kind for layer in enc.layers]
        assert kinds == ["linear", "paf", "pool", "linear", "linear"]
        top = enc.ctx.max_level
        # conv(1) + PAF(6) + pool(1) + conv(1) then the dense head
        assert [levels[i] for i in range(5)] == [top, top - 1, top - 7, top - 8, top - 9]

    def test_pool_and_conv_keys_cover_forward(self, toy_cnn):
        """Compiled Galois key set suffices — forward raised no KeyError —
        and stays far below one key per naive diagonal."""
        _, enc = toy_cnn
        naive_steps = {d for p in enc.matvec_plans.values() for d in p.diag_steps}
        assert len(enc.keys.galois) < len(naive_steps)
