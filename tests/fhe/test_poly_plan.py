"""Property tests for the Paterson–Stockmeyer polynomial planner.

Pure combinatorics (no ciphertexts): the plan must never exceed the
ladder's nonscalar-mult count, never exceed the level budget
``ceil(log2(d+1))``, cover every nonzero term exactly once, and flag
``use_ps`` only on a strict win — mirroring the matvec planner's
tie-goes-to-reference rule.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.poly_plan import (
    ladder_nonscalar_mults,
    plan_composite,
    plan_odd_poly,
    plan_paf_relu,
)
from repro.paf import get_paf
from repro.paf.bases import g_poly
from repro.paf.polynomial import OddPolynomial, mult_depth_of_degree


#: pinned per-component plans: (ladder mults, PS mults, use_ps)
COMPONENT_PINS = {
    1: (2, 2, False),    # degree 3 (g1/f1): two mults are optimal
    2: (4, 3, True),     # degree 5 (g2/f2): Horner giant chain
    3: (6, 5, True),     # degree 7 (g3, minimax-7): balanced giants
}


class TestComponentPins:
    @pytest.mark.parametrize("n", sorted(COMPONENT_PINS))
    def test_g_family(self, n):
        ladder, ps, use_ps = COMPONENT_PINS[n]
        plan = plan_odd_poly(g_poly(n))
        assert (plan.ladder_mults, plan.ps_mults, plan.use_ps) == (ladder, ps, use_ps)
        assert plan.mult_depth == mult_depth_of_degree(2 * n + 1)

    def test_degree_27_minimax(self):
        from repro.paf.minimax import minimax_alpha10_deg27

        deep = minimax_alpha10_deg27().components[-1]
        assert deep.degree == 27
        plan = plan_odd_poly(deep)
        assert plan.ladder_mults == 29
        assert plan.ps_mults == 17
        assert plan.use_ps
        assert plan.mult_depth == 5

    def test_registry_composites_never_worse(self):
        for form in ("f1g2", "f2g2", "f2g3", "alpha7", "f1f1g1g1"):
            paf = get_paf(form)
            plan = plan_composite(paf)
            ladder = sum(ladder_nonscalar_mults(c) for c in paf.components)
            assert plan.nonscalar_mults <= ladder
            assert plan.mult_depth == paf.mult_depth

    def test_relu_plan_depth_and_gate(self):
        paf = get_paf("f2g3")
        plan = plan_paf_relu(paf, scale=2.0)
        assert plan.mult_depth == paf.mult_depth + 1
        assert plan.scale == 2.0
        # folding preserves degrees, so leaf count == coefficient count
        assert plan.num_leaves == paf.num_coeffs()


class TestPlanStructure:
    def test_zero_polynomial_rejected_upfront(self):
        with pytest.raises(ValueError, match="no nonzero terms"):
            plan_odd_poly(OddPolynomial([0.0, 0.0]))

    def test_degree_one_is_ladder(self):
        plan = plan_odd_poly(OddPolynomial([0.7]))
        assert not plan.use_ps
        assert plan.nonscalar_mults == 0
        assert plan.mult_depth == 1

    def test_trailing_zeros_use_effective_degree(self):
        """A trained-to-zero top coefficient shrinks the plan, not the
        nominal ``OddPolynomial.degree``."""
        plan = plan_odd_poly(OddPolynomial([1.0, -0.3, 0.0, 0.0]))
        assert plan.degree == 3
        assert plan.mult_depth == 2

    def test_blocks_cover_terms_exactly_once(self):
        poly = g_poly(3)
        plan = plan_odd_poly(poly)
        exponents = sorted(
            plan.window * b.position + t.exponent
            for b in plan.blocks
            for t in b.terms
        )
        assert exponents == [2 * i + 1 for i, c in enumerate(poly.coeffs) if c]
        coeffs = {
            plan.window * b.position + t.exponent: t.coeff
            for b in plan.blocks
            for t in b.terms
        }
        for i, c in enumerate(poly.coeffs):
            if c:
                assert coeffs[2 * i + 1] == float(c)


class TestPlanProperties:
    @given(
        num_coeffs=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        sparsity=st.floats(min_value=0.0, max_value=0.8),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_worse_and_depth_bounded(self, num_coeffs, seed, sparsity):
        rng = np.random.default_rng(seed)
        coeffs = rng.normal(size=num_coeffs)
        coeffs[rng.random(num_coeffs) < sparsity] = 0.0
        if not np.any(coeffs):
            coeffs[0] = 1.0
        poly = OddPolynomial(coeffs)
        plan = plan_odd_poly(poly)
        ladder = ladder_nonscalar_mults(poly)
        assert plan.ps_mults <= ladder
        assert plan.use_ps == (plan.ps_mults < ladder)
        assert plan.nonscalar_mults == min(plan.ps_mults, ladder)
        assert plan.mult_depth == mult_depth_of_degree(plan.degree)
        # every nonzero term appears exactly once, with its coefficient
        got = sorted(
            (plan.window * b.position + t.exponent, t.coeff)
            for b in plan.blocks
            for t in b.terms
        )
        want = sorted(
            (2 * i + 1, float(c)) for i, c in enumerate(coeffs) if c != 0.0
        )
        assert got == want
        # leaf count is one per nonzero coefficient on both paths
        assert plan.num_leaves == len(want)
