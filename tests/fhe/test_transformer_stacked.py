"""The depth-wall demo: a 2-block transformer that only compiles refreshed.

The headline of the refresh redesign.  One transformer block costs ~32
encrypted levels — two stacked blocks need ~64 against the same 33-level
chain, so compilation is *impossible* without a mid-network level
refresh.  This suite pins every layer of that story:

* the stack genuinely does not compile under ``refresh="never"``;
* automatic placement inserts exactly one exactness-gated
  :class:`~repro.fhe.ir.RefreshNode` at the block boundary and the
  refreshed schedule fits the unchanged chain;
* decrypted logits still track the plaintext PAF model within the same
  rtol 1e-3 the single-block suite enforces — single request and
  SIMD-batched — i.e. the refresh is numerically invisible end to end.
"""

import numpy as np
import pytest

from repro.data.synthetic import make_sequence_dataset
from repro.fhe.ir import CompilePolicy, MergeNode, RefreshNode, compile_network
from repro.fhe.toy import TOY_TRANSFORMER_PARAMS
from repro.nn.tensor import Tensor

RTOL = 1e-3


def _val_data():
    return make_sequence_dataset(
        num_classes=3, n_train=96, n_val=24, seq=4, dim=8, seed=0
    )


def _rel(got, want):
    return np.max(np.abs(got - want)) / np.max(np.abs(want))


@pytest.fixture(scope="module")
def single_run(toy_transformer_stacked):
    """One plan-path encrypted forward, shared across tests."""
    model, enc = toy_transformer_stacked
    x = _val_data().x_val[0]
    cts = enc.encrypt_input_shards(x.ravel())
    out = enc.forward_shards(cts, mode="plan")[0]
    logits = enc.decrypt_logits(out, model.num_classes)
    return model, enc, x, out, logits


class TestDepthWall:
    def test_stack_cannot_compile_without_refresh(self, toy_transformer_stacked):
        model, _ = toy_transformer_stacked
        with pytest.raises(ValueError, match="context depth"):
            compile_network(
                model,
                TOY_TRANSFORMER_PARAMS,
                policy=CompilePolicy(refresh="never"),
            )

    def test_auto_policy_inserts_one_block_boundary_refresh(
        self, toy_transformer_stacked
    ):
        _, enc = toy_transformer_stacked
        refreshes = [
            i for i, n in enumerate(enc.graph.nodes) if isinstance(n, RefreshNode)
        ]
        assert refreshes == [9]
        # the boundary sits right after block 0's MLP merge
        assert isinstance(enc.graph.nodes[8], MergeNode)
        assert enc.graph.metadata["refresh"] == {
            "method": "recrypt",
            "positions": [9],
            "pipeline_levels": 0,
        }
        assert enc.graph.metadata["model"] == "toy_transformer_stacked"
        assert enc.graph.metadata["num_blocks"] == 2

    def test_refreshed_schedule_fits_unchanged_chain(
        self, toy_transformer_stacked
    ):
        _, enc = toy_transformer_stacked
        # segment-max depth, not the ~64-level sum the stack costs raw
        assert enc.graph.validate() <= TOY_TRANSFORMER_PARAMS.depth
        raw = sum(n.level_cost() for n in enc.graph.nodes)
        assert raw > TOY_TRANSFORMER_PARAMS.depth  # the wall is real


class TestEncryptedForward:
    def test_single_request_within_rtol(self, single_run):
        model, enc, x, out, logits = single_run
        want = model(Tensor(x[None])).data[0]
        assert _rel(logits, want) < RTOL
        assert int(np.argmax(logits)) == int(np.argmax(want))

    def test_simd_batch_within_rtol(self, toy_transformer_stacked):
        model, enc = toy_transformer_stacked
        batch = enc.max_batch
        xs = _val_data().x_val[:batch]
        cts = enc.encrypt_batch_shards([x.ravel() for x in xs])
        out = enc.forward_shards(cts, mode="plan")[0]
        got = enc.decrypt_logits(out, model.num_classes, batch=batch)
        want = model(Tensor(xs)).data
        assert _rel(got, want) < RTOL
        np.testing.assert_array_equal(got.argmax(axis=1), want.argmax(axis=1))
