"""Differential suite for the encrypted transformer lowering.

Three rings, cheapest first:

* **static schedule checks** (no crypto): the compiled graph's level
  costs sum exactly to the parameter depth, with the attention node's
  budget decomposing into its documented dance steps;
* **plaintext PAF accuracy**: the PAF-approximated model (range-reduced
  exp softmax, dense GELU, Newton reciprocal) tracks the exact model's
  logits over the validation set;
* **the trained toy transformer end to end**: decrypted logits match
  the plaintext PAF model within rtol 1e-3, single and SIMD-batched,
  with the chain consumed exactly (exit level 0); the naive/ladder
  reference path agrees with the compiled plans.
"""

import numpy as np
import pytest

from repro.data.synthetic import make_sequence_dataset
from repro.fhe.ir import AttentionNode, PolyNode
from repro.fhe.toy import TOY_TRANSFORMER_PARAMS, toy_transformer_model
from repro.nn.tensor import Tensor

RTOL = 1e-3


def _val_data():
    # same generator arguments as toy_transformer_model — the held-out
    # sequences the fixture's model was validated on
    return make_sequence_dataset(
        num_classes=3, n_train=96, n_val=24, seq=4, dim=8, seed=0
    )


def _rel(got, want):
    return np.max(np.abs(got - want)) / np.max(np.abs(want))


@pytest.fixture(scope="module")
def single_run(toy_transformer):
    """One plan-path encrypted forward, shared across tests."""
    model, enc = toy_transformer
    data = _val_data()
    x = data.x_val[0]
    cts = enc.encrypt_input_shards(x.ravel())
    out = enc.forward_shards(cts, mode="plan")[0]
    logits = enc.decrypt_logits(out, model.num_classes)
    return model, enc, x, out, logits


# ----------------------------------------------------------------------
# static level schedule (no crypto)
# ----------------------------------------------------------------------
class TestLevelSchedule:
    def test_total_level_cost_matches_params_depth(self, toy_transformer):
        _, enc = toy_transformer
        total = sum(node.level_cost() for node in enc.graph.nodes)
        assert total == TOY_TRANSFORMER_PARAMS.depth

    def test_attention_budget_decomposition(self, toy_transformer):
        _, enc = toy_transformer
        att = next(n for n in enc.graph.nodes if isinstance(n, AttentionNode))
        # 9 fixed dance levels (qkv, dots, placement, exp leaf, sum mask,
        # Newton seed, probs, extract, value + output projections) plus
        # the exp polynomial's PS depth, its range-reduction squarings
        # and two levels per Newton iteration
        exp_depth = int(np.ceil(np.log2(att.exp_poly.degree + 1)))
        expected = 9 + exp_depth + att.exp_squarings + 2 * att.recip_iters
        assert att.level_cost() == expected == 25

    def test_gelu_degree_12_costs_four_levels(self, toy_transformer):
        _, enc = toy_transformer
        gelu = next(n for n in enc.graph.nodes if isinstance(n, PolyNode))
        assert gelu.poly.degree == 12
        assert gelu.level_cost() == 4


# ----------------------------------------------------------------------
# plaintext PAF accuracy (no crypto)
# ----------------------------------------------------------------------
class TestPlaintextPAF:
    def test_paf_model_tracks_exact_model(self, toy_transformer):
        paf_model, _ = toy_transformer
        exact_model, data = toy_transformer_model()  # same seed → same weights
        want = exact_model(Tensor(data.x_val)).data
        got = paf_model(Tensor(data.x_val)).data
        assert _rel(got, want) < 1e-3
        np.testing.assert_array_equal(got.argmax(axis=1), want.argmax(axis=1))


# ----------------------------------------------------------------------
# encrypted end to end
# ----------------------------------------------------------------------
class TestEncryptedForward:
    def test_single_request_within_rtol(self, single_run):
        model, enc, x, out, logits = single_run
        want = model(Tensor(x[None])).data[0]
        assert _rel(logits, want) < RTOL
        assert int(np.argmax(logits)) == int(np.argmax(want))

    def test_chain_consumed_exactly(self, single_run):
        _, _, _, out, _ = single_run
        assert out.level == 0

    def test_simd_batch_within_rtol(self, toy_transformer):
        model, enc = toy_transformer
        data = _val_data()
        batch = enc.max_batch
        xs = data.x_val[:batch]
        cts = enc.encrypt_batch_shards([x.ravel() for x in xs])
        out = enc.forward_shards(cts, mode="plan")[0]
        got = enc.decrypt_logits(out, model.num_classes, batch=batch)
        want = model(Tensor(xs)).data
        assert _rel(got, want) < RTOL
        np.testing.assert_array_equal(
            got.argmax(axis=1), want.argmax(axis=1)
        )

    @pytest.mark.slow
    def test_reference_path_matches_plan(self, single_run):
        model, enc, x, _, plan_logits = single_run
        cts = enc.encrypt_input_shards(x.ravel())
        out = enc.forward_shards(cts, mode="reference")[0]
        ref_logits = enc.decrypt_logits(out, model.num_classes)
        assert out.level == 0
        # naive diagonals + term ladders vs BSGS + Paterson–Stockmeyer:
        # same schedule, independent op sequences
        assert _rel(ref_logits, plan_logits) < 5e-4
