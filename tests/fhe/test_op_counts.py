"""HE-op-count regression suite for the encrypted hot paths.

These tests pin the *exact* rotation / keyswitch / rescale counts of both
matvec paths, both activation paths, and the full compiled forward pass
via ``CountingEvaluator``, so a future change cannot silently regress a
hot path — the whole point of the BSGS matvec rewrite is the keyswitch
count, and of the Paterson–Stockmeyer activation rewrite the nonscalar
(ct×ct) multiplication count.

Acceptance invariants:

* every *dense* layer with >= 4 nonzero diagonals does strictly fewer
  keyswitches on the BSGS path (sparse patterns may tie — the planner
  then falls back to naive, pinned in test_plan_properties.py);
* every registry PAF with a component of degree >= 5 does strictly fewer
  nonscalar mults on the Paterson–Stockmeyer path at the *same* level
  consumption.  ``f1²∘g1²`` (all components degree 3) provably ties: the
  two mults of ``c₁x + c₃x³`` are optimal, so its plan keeps the ladder.
"""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksParams, keygen
from repro.ckks.instrumentation import CountingEvaluator
from repro.ckks.poly_eval import eval_paf_relu
from repro.ckks.poly_plan import plan_paf_relu
from repro.fhe.linear import (
    diagonals_of,
    encrypted_matvec,
    encrypted_matvec_bsgs,
    plan_matvec,
)
from repro.paf import get_paf

SIZE = 16


@pytest.fixture(scope="module")
def rt():
    ctx = CkksContext(CkksParams(n=256, scale_bits=25, depth=2))
    keys = keygen(ctx, seed=0, galois_steps=tuple(range(1, SIZE)))
    return ctx, CkksEvaluator(ctx, keys)


def _packed_ct(ctx, ev, size, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=size)
    packed = np.zeros(ctx.slots)
    packed[:size] = x
    packed[size : 2 * size] = x
    return ev.encrypt(packed)


class TestMatvecOpCounts:
    def test_naive_dense_8x8_exact_counts(self, rt):
        ctx, ev = rt
        w = np.random.default_rng(0).normal(size=(8, 8))
        counting = CountingEvaluator(ev)
        ct = _packed_ct(ctx, counting, 8)
        counting.reset()
        encrypted_matvec(counting, ct, w)
        assert dict(counting.counts) == {
            "rotate": 7,
            "mul_plain": 8,
            "add": 7,
            "rescale": 1,
        }
        assert counting.keyswitch_count == 7

    def test_bsgs_dense_8x8_exact_counts(self, rt):
        ctx, ev = rt
        w = np.random.default_rng(0).normal(size=(8, 8))
        counting = CountingEvaluator(ev)
        ct = _packed_ct(ctx, counting, 8)
        counting.reset()
        encrypted_matvec_bsgs(counting, ct, w)
        # n1=4: babies {0,1,2,3} (3 hoisted rotations sharing 1 decompose),
        # giants {0,4} (1 standalone rotation of an accumulated sum)
        assert dict(counting.counts) == {
            "hoist_decompose": 1,
            "rotate_hoisted": 3,
            "rotate": 1,
            "mul_plain": 8,
            "add": 7,
            "rescale": 1,
        }
        assert counting.keyswitch_count == 4

    @pytest.mark.parametrize("size", list(range(4, SIZE + 1)))
    def test_bsgs_strictly_fewer_keyswitches_dense(self, rt, size):
        """Acceptance: every dense layer with >= 4 nonzero diagonals does
        strictly fewer keyswitches on the BSGS path."""
        ctx, ev = rt
        w = np.random.default_rng(size).normal(size=(size, size))
        plan = plan_matvec(diagonals_of(w, ctx.slots).keys(), size)
        assert plan.use_bsgs
        assert plan.bsgs_keyswitches < plan.naive_keyswitches

        counting = CountingEvaluator(ev)
        ct = _packed_ct(ctx, counting, size)
        counting.reset()
        encrypted_matvec_bsgs(counting, ct, w)
        ks_bsgs = counting.keyswitch_count
        counting.reset()
        encrypted_matvec(counting, ct, w)
        ks_naive = counting.keyswitch_count
        # measured counts match the plan's prediction exactly
        assert ks_bsgs == plan.bsgs_keyswitches
        assert ks_naive == plan.naive_keyswitches
        assert ks_bsgs < ks_naive

    def test_both_paths_rescale_once(self, rt):
        ctx, ev = rt
        w = np.random.default_rng(1).normal(size=(6, 6))
        counting = CountingEvaluator(ev)
        ct = _packed_ct(ctx, counting, 6)
        for fn in (encrypted_matvec, encrypted_matvec_bsgs):
            counting.reset()
            fn(counting, ct, w)
            assert counting.counts["rescale"] == 1

    def test_identity_matrix_no_keyswitches(self, rt):
        ctx, ev = rt
        w = np.eye(6)
        plan = plan_matvec(diagonals_of(w, ctx.slots).keys(), 6)
        assert not plan.use_bsgs          # nothing to gain: 0 rotations
        assert plan.keyswitches == 0
        counting = CountingEvaluator(ev)
        ct = _packed_ct(ctx, counting, 6)
        counting.reset()
        encrypted_matvec(counting, ct, w)
        assert counting.keyswitch_count == 0


class TestNetworkOpCounts:
    """Full-forward regression anchors for the compiled toy MLP
    (8 -> 6 -> 3 with one f1∘g2 PAF): two dense 8x8-padded linears."""

    @pytest.fixture(scope="class")
    def compiled(self, toy_reference_enc):
        return toy_reference_enc

    def _forward_counts(self, enc, **kw):
        counting = CountingEvaluator(enc.ev)
        ct = enc.encrypt_batch([np.zeros(8)])
        counting.reset()
        enc.forward(ct, ev=counting, **kw)
        return counting

    def test_planned_forward_exact_counts(self, compiled):
        """BSGS matvecs + Paterson–Stockmeyer activation (the default)."""
        counting = self._forward_counts(compiled)
        assert dict(counting.counts) == {
            "hoist_decompose": 2,   # one per linear layer
            "rotate_hoisted": 6,    # 3 baby rotations per 8-wide layer
            "rotate": 3,            # 2 giant steps + 1 replication rotation
            "mul_plain": 24,        # 21 leaves/diagonals + 3 exact aligns
            "add": 18,
            "add_plain": 3,
            "mul": 6,               # f1∘g2 PAF: 3 (PS g2) + 2 (f1) + gate
            "rescale": 16,
            "align_correction": 3,  # PS insists on exact scale alignment
            "mod_switch_to": 3,     # plan-scheduled leaf levels
        }
        assert counting.keyswitch_count == 15
        assert counting.nonscalar_mult_count == 6

    def test_naive_forward_exact_counts(self, compiled):
        """Reference everywhere: naive diagonal loop + ladder activation."""
        counting = self._forward_counts(compiled, mode="reference")
        assert dict(counting.counts) == {
            "rotate": 15,           # 7 per dense 8-wide layer + 1 replication
            "mul_plain": 21,
            "add": 18,
            "add_plain": 3,
            "mul": 7,               # f1∘g2 PAF: 4 (ladder g2) + 2 (f1) + gate
            "rescale": 14,
            "mod_switch_to": 5,
        }
        assert counting.keyswitch_count == 22
        assert counting.nonscalar_mult_count == 7

    def test_planned_forward_saves_keyswitches_end_to_end(self, compiled):
        bsgs = self._forward_counts(compiled)
        naive = self._forward_counts(compiled, mode="reference")
        # BSGS cuts rotations AND the PS activation cuts relin keyswitches
        assert bsgs.keyswitch_count < naive.keyswitch_count
        assert bsgs.nonscalar_mult_count < naive.nonscalar_mult_count
        # addition structure is untouched by either rewrite
        for op in ("add", "add_plain"):
            assert bsgs.counts[op] == naive.counts[op]

    def test_key_set_smaller_than_reference(self, compiled):
        """BSGS shrinks the Galois key set: baby+giant+replicate steps
        are fewer than one key per nonzero diagonal."""
        plans = compiled.matvec_plans.values()
        bsgs_steps = set().union(*(p.rotation_steps() for p in plans))
        naive_steps = set().union(*(p.diag_steps for p in plans))
        assert len(bsgs_steps) < len(naive_steps)


class TestCnnOpCounts:
    """Full-forward regression anchors for the compiled toy CNN
    (conv-BN(folded)-PAF-pool-conv-dense on 1x8x8, f1∘g2 PAF).

    The conv matvecs are where BSGS earns its keep: the second conv reads
    a pool-strided grid and spreads over 120 nonzero diagonals — 119
    keyswitches naive, 21 planned.  The naive reference forward is not
    measured here (it would pay all 186 diagonal rotations); the plan
    predictions pin its cost instead.
    """

    @pytest.fixture(scope="class")
    def compiled(self, toy_cnn):
        return toy_cnn[1]

    #: (num_diagonals, naive keyswitches, bsgs keyswitches) per linear layer
    CNN_PLANS = {
        0: (18, 17, 8),     # conv1 (BN folded), dense 1x8x8 -> 2x8x8
        3: (120, 119, 21),  # conv2 reading the pool-strided grid
        4: (34, 33, 11),    # dense head reading the flattened activation
    }

    def test_per_layer_plans_pinned(self, compiled):
        assert set(compiled.matvec_plans) == set(self.CNN_PLANS)
        for i, (diags, naive, bsgs) in self.CNN_PLANS.items():
            plan = compiled.matvec_plans[i]
            assert plan.use_bsgs
            assert (plan.num_diagonals, plan.naive_keyswitches, plan.bsgs_keyswitches) \
                == (diags, naive, bsgs)

    def test_planned_forward_exact_counts(self, compiled):
        counting = CountingEvaluator(compiled.ev)
        ct = compiled.encrypt_batch([np.zeros(64)])
        counting.reset()
        compiled.forward(ct, ev=counting)
        assert dict(counting.counts) == {
            "hoist_decompose": 5,   # conv1 + conv2 + dense + 2 pool stages
            "rotate_hoisted": 26,   # baby rotations + one per pool stage
            "rotate": 18,           # giant steps + 2 replication rotations
            "mul_plain": 181,       # 172 diagonals/leaves + pool mask + aligns
            "add": 176,
            "add_plain": 4,
            "mul": 6,               # f1∘g2 PAF: 3 (PS g2) + 2 (f1) + gate
            "rescale": 18,
            "align_correction": 3,
            "mod_switch_to": 3,
        }
        assert counting.keyswitch_count == 50
        assert counting.nonscalar_mult_count == 6

    def test_bsgs_beats_naive_on_every_conv_layer(self, compiled):
        for plan in compiled.matvec_plans.values():
            assert plan.bsgs_keyswitches < plan.naive_keyswitches

    def test_galois_key_set_far_below_naive(self, compiled):
        naive_steps = {d for p in compiled.matvec_plans.values() for d in p.diag_steps}
        assert len(compiled.keys.galois) < len(naive_steps) // 3


class TestResnetOpCounts:
    """Full-forward regression anchors for the compiled toy ResNet
    (stem + 2 BasicBlocks + pool + dense on 1x8x8, f1∘g2 PAFs, channels
    sharded across 2 ciphertexts).

    Sharding multiplies the activation cost by the shard count (each
    shard runs the PAF) but keeps every conv block at O(√D) keyswitches
    with one hoisted decomposition per *input shard* per layer; the two
    residual merges cost 2 alignment corrections + adds each, and only
    the downsampling block pays a projection matvec.
    """

    @pytest.fixture(scope="class")
    def compiled(self, toy_resnet):
        return toy_resnet[1]

    def test_planned_forward_exact_counts(self, compiled):
        counting = CountingEvaluator(compiled.ev)
        cts = compiled.encrypt_batch_shards([np.zeros(64)])
        counting.reset()
        compiled.forward_shards(cts, ev=counting)
        assert dict(counting.counts) == {
            "hoist_decompose": 17,
            "rotate_hoisted": 58,
            "rotate": 120,
            "mul_plain": 644,
            "add": 621,
            "add_plain": 21,
            "mul": 48,          # 4 f1∘g2 PAFs x 2 shards x 6 + gate mults
            "rescale": 123,
            "align_correction": 20,
            "mod_switch_to": 40,
        }
        # the opcount_baseline.json pins (CI gate) must stay in lockstep
        assert counting.keyswitch_count == 226
        assert counting.nonscalar_mult_count == 48

    def test_every_conv_block_plans_bsgs(self, compiled):
        for plans in compiled.shard_plans.values():
            for row in plans:
                for plan in row:
                    if plan is not None:
                        assert plan.use_bsgs
                        assert plan.bsgs_keyswitches < plan.naive_keyswitches

    def test_exact_scale_plans_everywhere(self, compiled):
        """Sharded compilation must force exact-scale activation plans —
        ladder drift doubles per level and overflows a 31-level chain."""
        for plan in compiled.paf_plans.values():
            assert plan.exact_scales
            assert all(p.use_ps for p in plan.components)


#: pinned nonscalar-mult counts of the encrypted PAF-ReLU per registry form:
#: (ladder reference, Paterson–Stockmeyer plan).  Component accounting —
#: degree 3: 2/2 (tie, optimal), degree 5: 4/3, degree 7: 6/5,
#: degree 27: 29/17; the ReLU gate adds one on both paths.
RELU_NONSCALAR = {
    "f1g2": (7, 6),          # g2(5) + f1(3) + gate
    "f2g2": (9, 7),          # 4+4+1 -> 3+3+1
    "f2g3": (11, 9),         # g3(7) + f2(5) + gate
    "alpha7": (13, 11),      # two degree-7 minimax components
    "f1f1g1g1": (9, 9),      # four degree-3 components: ladder is optimal
    "alpha10": (38, 25),     # (3, 7, 27) minimax composite
}


class TestActivationOpCounts:
    """Pin the exact nonscalar-mult counts of both activation paths.

    The acceptance invariant of the Paterson–Stockmeyer rewrite: strictly
    fewer nonscalar mults than the ladder for every registry PAF with a
    component of degree >= 5 (in particular every degree >= 7 form with
    such a component), never more for any, at identical level consumption.
    """

    @pytest.fixture(scope="class")
    def rt(self):
        ctx = CkksContext(CkksParams(n=256, scale_bits=25, depth=11))
        keys = keygen(ctx, seed=0)
        return ctx, CkksEvaluator(ctx, keys)

    @pytest.mark.parametrize("form", sorted(RELU_NONSCALAR))
    def test_measured_counts_match_pins(self, rt, form):
        ctx, ev = rt
        paf = get_paf(form)
        ladder_pin, ps_pin = RELU_NONSCALAR[form]
        plan = plan_paf_relu(paf)
        assert plan.nonscalar_mults == ps_pin

        counting = CountingEvaluator(ev)
        ct = counting.encrypt(np.linspace(-1, 1, ctx.slots))
        counting.reset()
        out_ps = eval_paf_relu(counting, ct, paf, plan=plan)
        measured_ps = counting.nonscalar_mult_count
        lvl_ps = ctx.max_level - out_ps.level
        counting.reset()
        out_ladder = eval_paf_relu(counting, ct, paf, reference=True)
        measured_ladder = counting.nonscalar_mult_count
        assert measured_ps == ps_pin
        assert measured_ladder == ladder_pin
        # both paths consume exactly the analytic depth
        assert lvl_ps == ctx.max_level - out_ladder.level == plan.mult_depth

    def test_strictly_fewer_for_degree5_plus_components(self):
        for form, (ladder, ps) in RELU_NONSCALAR.items():
            paf = get_paf(form)
            if max(c.degree for c in paf.components) >= 5:
                assert ps < ladder, form
            else:
                assert ps == ladder, form
            assert ps <= ladder, form
