"""HE-op-count regression suite for the encrypted matvec hot path.

These tests pin the *exact* rotation / keyswitch / rescale counts of both
matvec paths (and of the full compiled forward pass) via
``CountingEvaluator``, so a future change cannot silently regress the
hot path — the whole point of the BSGS rewrite is the keyswitch count.

The acceptance invariant: for every *dense* layer with >= 4 nonzero
diagonals (the compiled networks' zero-padded square weights are dense
in diagonal space) the BSGS path performs *strictly fewer* keyswitches
than the naive path.  Sparse diagonal patterns that don't factor into a
baby×giant grid may tie instead — the planner then falls back to naive,
never costing more (pinned property-wise in test_plan_properties.py).
"""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams, CkksEvaluator, keygen
from repro.ckks.instrumentation import CountingEvaluator
from repro.fhe.linear import (
    diagonals_of,
    encrypted_matvec,
    encrypted_matvec_bsgs,
    plan_matvec,
)

SIZE = 16


@pytest.fixture(scope="module")
def rt():
    ctx = CkksContext(CkksParams(n=256, scale_bits=25, depth=2))
    keys = keygen(ctx, seed=0, galois_steps=tuple(range(1, SIZE)))
    return ctx, CkksEvaluator(ctx, keys)


def _packed_ct(ctx, ev, size, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=size)
    packed = np.zeros(ctx.slots)
    packed[:size] = x
    packed[size : 2 * size] = x
    return ev.encrypt(packed)


class TestMatvecOpCounts:
    def test_naive_dense_8x8_exact_counts(self, rt):
        ctx, ev = rt
        w = np.random.default_rng(0).normal(size=(8, 8))
        counting = CountingEvaluator(ev)
        ct = _packed_ct(ctx, counting, 8)
        counting.reset()
        encrypted_matvec(counting, ct, w)
        assert dict(counting.counts) == {
            "rotate": 7,
            "mul_plain": 8,
            "add": 7,
            "rescale": 1,
        }
        assert counting.keyswitch_count == 7

    def test_bsgs_dense_8x8_exact_counts(self, rt):
        ctx, ev = rt
        w = np.random.default_rng(0).normal(size=(8, 8))
        counting = CountingEvaluator(ev)
        ct = _packed_ct(ctx, counting, 8)
        counting.reset()
        encrypted_matvec_bsgs(counting, ct, w)
        # n1=4: babies {0,1,2,3} (3 hoisted rotations sharing 1 decompose),
        # giants {0,4} (1 standalone rotation of an accumulated sum)
        assert dict(counting.counts) == {
            "hoist_decompose": 1,
            "rotate_hoisted": 3,
            "rotate": 1,
            "mul_plain": 8,
            "add": 7,
            "rescale": 1,
        }
        assert counting.keyswitch_count == 4

    @pytest.mark.parametrize("size", list(range(4, SIZE + 1)))
    def test_bsgs_strictly_fewer_keyswitches_dense(self, rt, size):
        """Acceptance: every dense layer with >= 4 nonzero diagonals does
        strictly fewer keyswitches on the BSGS path."""
        ctx, ev = rt
        w = np.random.default_rng(size).normal(size=(size, size))
        plan = plan_matvec(diagonals_of(w, ctx.slots).keys(), size)
        assert plan.use_bsgs
        assert plan.bsgs_keyswitches < plan.naive_keyswitches

        counting = CountingEvaluator(ev)
        ct = _packed_ct(ctx, counting, size)
        counting.reset()
        encrypted_matvec_bsgs(counting, ct, w)
        ks_bsgs = counting.keyswitch_count
        counting.reset()
        encrypted_matvec(counting, ct, w)
        ks_naive = counting.keyswitch_count
        # measured counts match the plan's prediction exactly
        assert ks_bsgs == plan.bsgs_keyswitches
        assert ks_naive == plan.naive_keyswitches
        assert ks_bsgs < ks_naive

    def test_both_paths_rescale_once(self, rt):
        ctx, ev = rt
        w = np.random.default_rng(1).normal(size=(6, 6))
        counting = CountingEvaluator(ev)
        ct = _packed_ct(ctx, counting, 6)
        for fn in (encrypted_matvec, encrypted_matvec_bsgs):
            counting.reset()
            fn(counting, ct, w)
            assert counting.counts["rescale"] == 1

    def test_identity_matrix_no_keyswitches(self, rt):
        ctx, ev = rt
        w = np.eye(6)
        plan = plan_matvec(diagonals_of(w, ctx.slots).keys(), 6)
        assert not plan.use_bsgs          # nothing to gain: 0 rotations
        assert plan.keyswitches == 0
        counting = CountingEvaluator(ev)
        ct = _packed_ct(ctx, counting, 6)
        counting.reset()
        encrypted_matvec(counting, ct, w)
        assert counting.keyswitch_count == 0


class TestNetworkOpCounts:
    """Full-forward regression anchors for the compiled toy MLP
    (8 -> 6 -> 3 with one f1∘g2 PAF): two dense 8x8-padded linears."""

    @pytest.fixture(scope="class")
    def compiled(self, toy_reference_enc):
        return toy_reference_enc

    def _forward_counts(self, enc, **kw):
        counting = CountingEvaluator(enc.ev)
        ct = enc.encrypt_batch([np.zeros(8)])
        counting.reset()
        enc.forward(ct, ev=counting, **kw)
        return counting

    def test_bsgs_forward_exact_counts(self, compiled):
        counting = self._forward_counts(compiled)
        assert dict(counting.counts) == {
            "hoist_decompose": 2,   # one per linear layer
            "rotate_hoisted": 6,    # 3 baby rotations per 8-wide layer
            "rotate": 3,            # 2 giant steps + 1 replication rotation
            "mul_plain": 21,
            "add": 18,
            "add_plain": 3,
            "mul": 7,
            "rescale": 14,
            "mod_switch_to": 5,
        }
        assert counting.keyswitch_count == 16

    def test_naive_forward_exact_counts(self, compiled):
        counting = self._forward_counts(compiled, reference=True)
        assert dict(counting.counts) == {
            "rotate": 15,           # 7 per dense 8-wide layer + 1 replication
            "mul_plain": 21,
            "add": 18,
            "add_plain": 3,
            "mul": 7,
            "rescale": 14,
            "mod_switch_to": 5,
        }
        assert counting.keyswitch_count == 22

    def test_bsgs_saves_keyswitches_end_to_end(self, compiled):
        bsgs = self._forward_counts(compiled)
        naive = self._forward_counts(compiled, reference=True)
        assert bsgs.keyswitch_count < naive.keyswitch_count
        # non-rotation op counts are untouched by the rewrite
        for op in ("mul_plain", "add", "add_plain", "mul", "rescale"):
            assert bsgs.counts[op] == naive.counts[op]

    def test_key_set_smaller_than_reference(self, compiled):
        """BSGS shrinks the Galois key set: baby+giant+replicate steps
        are fewer than one key per nonzero diagonal."""
        plans = compiled.matvec_plans.values()
        bsgs_steps = set().union(*(p.rotation_steps() for p in plans))
        naive_steps = set().union(*(p.diag_steps for p in plans))
        assert len(bsgs_steps) < len(naive_steps)
