"""Differential suite for multi-ciphertext residual compilation.

Four rings of verification, cheapest first:

* **multi-grid geometry**: :class:`~repro.fhe.packing.MultiGridLayout`
  sharding/pooling invariants, no crypto;
* **pure-numpy sharded lowering differentials** (hypothesis-driven): the
  per-shard-pair conv/linear block matrices reproduce
  ``repro.nn.functional`` across shard counts K ∈ {1, 2, 4};
* **encrypted residual differentials**: level-alignment edge cases
  (branch gaps of 0, 1 and 2 levels), identity and 1×1-projection
  BasicBlocks on real ciphertexts vs the plaintext forward;
* **the trained toy ResNet end to end**: 2 residual blocks, a stride-2
  projection downsample, channels sharded across 2 ciphertexts — single
  and SIMD-batched through :class:`repro.serve.artifact.ModelArtifact`,
  decrypting to plaintext logits within rtol 1e-3.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import CkksParams
from repro.fhe.cnn import (
    compile_cnn,
    compile_resnet,
    conv2d_shard_matrices,
    linear_shard_matrices,
)
from repro.fhe.latency import (
    analytic_residual_merge_cost,
    analytic_sharded_matvec_cost,
    residual_merge_op_counts,
    sharded_matvec_op_counts,
)
from repro.fhe.linear import grouped_diagonals, shard_hoist_steps
from repro.fhe.ir import MatvecNode, MergeNode, PoolNode, ResidualTapNode
from repro.fhe.network import EncryptedNetwork
from repro.fhe.packing import GridLayout, MultiGridLayout
from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
)
from repro.nn.models.resnet import BasicBlock, toy_resnet
from repro.nn.module import Sequential
from repro.nn.tensor import Tensor
from repro.serve.artifact import ModelArtifact

# deep-chain contexts need the scale-tracking prime schedule
MINI_PARAMS = CkksParams(n=256, scale_bits=25, depth=4, scale_tracking=True)
BLOCK_PARAMS = CkksParams(n=256, scale_bits=27, depth=16, scale_tracking=True)


# ----------------------------------------------------------------------
# MultiGridLayout geometry
# ----------------------------------------------------------------------
class TestMultiGridLayout:
    def test_split_balances_contiguous_channels(self):
        mg = MultiGridLayout.split(5, 4, 4, 2)
        assert [g.channels for g in mg.shards] == [3, 2]
        assert mg.channel_offsets == (0, 3)
        assert mg.total_channels == 5
        assert mg.shard_of(0) == (0, 0)
        assert mg.shard_of(3) == (1, 0)
        assert mg.shard_of(4) == (1, 1)

    def test_never_more_shards_than_channels(self):
        assert MultiGridLayout.split(1, 8, 8, 4).num_shards == 1
        assert MultiGridLayout.split(3, 8, 8, 8).num_shards == 3

    def test_pooled_keeps_shared_geometry(self):
        mg = MultiGridLayout.split(4, 8, 8, 2).pooled(2, 2)
        for g in mg.shards:
            assert (g.height, g.width) == (4, 4)
            assert (g.row_stride, g.col_stride) == (16, 2)
        assert mg.span == mg.shards[0].span

    def test_global_pooled_one_slot_per_channel(self):
        mg = MultiGridLayout.split(4, 4, 4, 2).global_pooled()
        np.testing.assert_array_equal(mg.shards[0].positions().ravel(), [0, 16])

    def test_split_values_is_contiguous_nchw(self):
        mg = MultiGridLayout.split(3, 2, 2, 2)
        parts = mg.split_values(np.arange(12))
        np.testing.assert_array_equal(parts[0], np.arange(8))
        np.testing.assert_array_equal(parts[1], np.arange(8, 12))

    def test_mismatched_geometry_rejected(self):
        with pytest.raises(ValueError, match="geometries disagree"):
            MultiGridLayout(
                (GridLayout.dense(1, 4, 4), GridLayout.dense(1, 2, 2))
            )

    def test_wrong_value_count_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            MultiGridLayout.split(2, 2, 2, 2).split_values(np.arange(9))


# ----------------------------------------------------------------------
# pure-numpy sharded lowering differentials (no crypto)
# ----------------------------------------------------------------------
def _apply_blocks(blocks, biases, in_mg, parts):
    """Numpy model of encrypted_matvec_shards on scattered slot vectors."""
    outs = []
    for j, row in enumerate(blocks):
        acc = None
        for i, mat in enumerate(row):
            if mat is None:
                continue
            g = in_mg.shards[i]
            vec = np.zeros(mat.shape[1])
            vec[g.positions().ravel()] = parts[i]
            y = mat @ vec
            acc = y if acc is None else acc + y
        if biases is not None and biases[j] is not None:
            acc = acc + biases[j]
        outs.append(acc)
    return outs


conv_cases = st.tuples(
    st.sampled_from([1, 2, 4]),  # shard count K
    st.integers(1, 4),           # in channels
    st.integers(1, 4),           # out channels
    st.sampled_from([4, 5, 6]),  # H = W
    st.sampled_from([1, 2]),     # stride
    st.integers(0, 1),           # padding
)


class TestShardedConvLowering:
    @settings(max_examples=60, deadline=None)
    @given(conv_cases, st.integers(0, 10_000))
    def test_blocks_match_functional_conv(self, case, seed):
        k_shards, ic, oc, hw, stride, padding = case
        if 3 > hw + 2 * padding:
            return
        rng = np.random.default_rng(seed)
        conv = Conv2d(ic, oc, 3, stride=stride, padding=padding, rng=rng)
        conv.bias.data = rng.normal(size=oc)
        x = rng.normal(size=(1, ic, hw, hw))
        ref = F.conv2d(
            Tensor(x), conv.weight, conv.bias, stride, padding
        ).data.ravel()

        mg = MultiGridLayout.split(ic, hw, hw, k_shards)
        blocks, biases, out_mg = conv2d_shard_matrices(
            conv.weight.data, conv.bias.data, mg,
            stride=stride, padding=padding, num_shards=k_shards,
        )
        got = np.concatenate(
            _apply_blocks(blocks, biases, mg, mg.split_values(x.ravel()))
        )
        np.testing.assert_allclose(got, ref, atol=1e-10)
        assert out_mg.num_elements == len(ref)
        assert out_mg.num_shards == min(k_shards, oc)

    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from([1, 2, 4]),
        st.integers(2, 4),
        st.integers(2, 5),
        st.integers(0, 10_000),
    )
    def test_linear_head_reads_all_shards(self, k_shards, c, out_f, seed):
        rng = np.random.default_rng(seed)
        mg = MultiGridLayout.split(c, 4, 4, k_shards).pooled(2, 2)
        w = rng.normal(size=(out_f, mg.num_elements))
        blocks = linear_shard_matrices(w, mg)
        assert len(blocks) == 1 and len(blocks[0]) == mg.num_shards
        x = rng.normal(size=mg.num_elements)
        bounds = np.cumsum([g.num_elements for g in mg.shards[:-1]])
        got = _apply_blocks(blocks, None, mg, np.split(x, bounds))[0]
        np.testing.assert_allclose(got, w @ x, atol=1e-10)

    def test_channel_mismatch_rejected(self):
        conv = Conv2d(2, 1, 3)
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d_shard_matrices(
                conv.weight.data, None, MultiGridLayout.split(1, 4, 4, 1)
            )

    def test_grouped_diagonals_cover_both_plan_kinds(self):
        """Naive-planned blocks regroup as one giant-step-0 group whose
        hoist steps are exactly the nonzero diagonal indices."""
        from repro.fhe.linear import diagonals_of, plan_matvec

        w = np.eye(6) + np.diag(np.ones(5), 1)  # 2 diagonals: naive wins
        diags = diagonals_of(w, 32)
        plan = plan_matvec(diags.keys(), 6)
        assert not plan.use_bsgs
        groups = grouped_diagonals(diags, plan)
        assert set(groups) == {0}
        assert shard_hoist_steps([[groups]], 0) == [1]


# ----------------------------------------------------------------------
# encrypted residual differentials
# ----------------------------------------------------------------------
def _eater():
    """A level-eater layer: masked identity multiply, one level, no rotation."""
    return PoolNode(shifts=((), ()), pool_scale=1.0)


class TestLevelAlignment:
    @pytest.mark.parametrize("gap", [0, 1, 2])
    def test_identity_merge_across_level_gaps(self, gap):
        """Residual add where the branches differ by 0, 1 and 2 levels:
        the skip aligns to the main branch exactly, the output is
        ``2·x``, and the merge consumes no level of its own."""
        size = 8
        layers = [MatvecNode(blocks=[[np.eye(size)]])]
        layers.append(ResidualTapNode())
        tap = len(layers) - 1
        for _ in range(gap):
            layers.append(_eater())
        layers.append(MergeNode(tap=tap))
        enc = EncryptedNetwork(layers, size=size, params=MINI_PARAMS, seed=0)
        x = np.random.default_rng(gap).normal(size=size)
        out = enc.forward_shards(enc.encrypt_batch_shards([x]))
        got = enc.decrypt_logits(out[0], size)
        np.testing.assert_allclose(got, 2 * x, atol=1e-3)
        assert enc.ctx.max_level - out[0].level == 1 + gap

    @pytest.mark.parametrize("gap", [1, 2])
    def test_sharded_identity_merge_across_level_gaps(self, gap):
        """The same alignment edge cases with K=2 shards: each shard's
        skip aligns and adds independently."""
        size = 4
        eye = np.eye(size)
        blocks = [[eye, None], [None, eye]]
        layers = [MatvecNode(blocks=[row[:] for row in blocks])]
        layers.append(ResidualTapNode())
        tap = len(layers) - 1
        for _ in range(gap):
            layers.append(_eater())
        layers.append(MergeNode(tap=tap))
        enc = EncryptedNetwork(
            layers, size=size, params=MINI_PARAMS, seed=0, input_shards=2
        )
        enc.input_splits = [size, size]
        rng = np.random.default_rng(gap)
        x = rng.normal(size=2 * size)
        out = enc.forward_shards(enc.encrypt_batch_shards([x]))
        got = np.concatenate(
            [enc.decrypt_logits(ct, size) for ct in out]
        )
        np.testing.assert_allclose(got, 2 * x, atol=1e-3)

    def test_projection_merge_needs_level_gap(self):
        """A projection skip with a 0-level main branch cannot rescale
        into alignment — rejected at construction."""
        size = 4
        layers = [
            MatvecNode(blocks=[[np.eye(size)]]),
            ResidualTapNode(),
            MergeNode(blocks=[[np.eye(size)]], tap=1),
        ]
        with pytest.raises(ValueError, match="projection skip needs"):
            EncryptedNetwork(layers, size=size, params=MINI_PARAMS, seed=0)

    def test_all_zero_output_shard_rejected_at_compile(self):
        """An output shard whose every weight block is zero fails at
        compile (like the single-ct all-zero-weight rejection), not on
        the first encrypted forward."""
        layers = [MatvecNode(blocks=[[np.zeros((4, 4))]])]
        with pytest.raises(ValueError, match="no nonzero block"):
            EncryptedNetwork(layers, size=4, params=MINI_PARAMS, seed=0)

    def test_unbalanced_taps_rejected(self):
        size = 4
        layers = [
            MatvecNode(blocks=[[np.eye(size)]]),
            ResidualTapNode(),
        ]
        with pytest.raises(ValueError, match="never merged"):
            EncryptedNetwork(layers, size=size, params=MINI_PARAMS, seed=0)
        with pytest.raises(ValueError, match="no open residual tap"):
            EncryptedNetwork(
                [layers[0], MergeNode(tap=0)],
                size=size, params=MINI_PARAMS, seed=0,
            )


def _trained_block_net(stride: int, ch_out: int, seed: int = 3):
    """Stem conv-BN + one BasicBlock + head, PAF-replaced and frozen."""
    from repro.core import calibrate_static_scales, convert_to_static, replace_all
    from repro.paf import get_paf

    rng = np.random.default_rng(seed)
    model = Sequential(
        Conv2d(1, 2, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(2, track_running_stats=True),
        BasicBlock(2, ch_out, stride, rng=rng, track_running_stats=True),
        Flatten(),
        Linear(ch_out * (16 // (stride * stride)), 3, rng=rng),
    )
    xs = rng.normal(size=(8, 1, 4, 4))
    model.train()
    for _ in range(3):
        model(Tensor(xs))  # populate BN running statistics
    replace_all(model, get_paf("f1g2"), xs[:2])
    calibrate_static_scales(model, [xs])
    convert_to_static(model)
    model.eval()
    return model, rng


class TestEncryptedBasicBlock:
    def test_identity_skip_matches_plaintext(self):
        model, rng = _trained_block_net(stride=1, ch_out=2)
        enc = compile_resnet(model, (1, 4, 4), BLOCK_PARAMS, num_shards=2, seed=0)
        kinds = [layer.kind for layer in enc.layers]
        assert kinds == [
            "linear", "residual", "linear", "paf", "linear", "merge",
            "paf", "linear",
        ]
        assert enc.layers[5].blocks is None  # identity skip: no projection
        x = rng.normal(size=(1, 1, 4, 4))
        ref = model(Tensor(x)).data.ravel()
        out = enc.forward_shards(enc.encrypt_input_shards(x.ravel()))
        got = enc.decrypt_logits(out[0], 3)
        np.testing.assert_allclose(got, ref, atol=2e-3)

    def test_projection_skip_matches_plaintext(self):
        """Stride-2 downsampling block: the 1×1-projection conv (BN
        folded) runs on the saved branch and lands on the main branch's
        reduced-resolution layout."""
        model, rng = _trained_block_net(stride=2, ch_out=4)
        enc = compile_resnet(model, (1, 4, 4), BLOCK_PARAMS, num_shards=2, seed=0)
        merge = next(layer for layer in enc.layers if layer.kind == "merge")
        assert merge.blocks is not None  # projection skip compiled
        x = rng.normal(size=(1, 1, 4, 4))
        ref = model(Tensor(x)).data.ravel()
        out = enc.forward_shards(enc.encrypt_input_shards(x.ravel()))
        got = enc.decrypt_logits(out[0], 3)
        np.testing.assert_allclose(got, ref, atol=2e-3)

    def test_branch_schedule_exposed(self):
        model, _ = _trained_block_net(stride=2, ch_out=4)
        enc = compile_resnet(model, (1, 4, 4), BLOCK_PARAMS, num_shards=2, seed=0)
        levels = enc.layer_input_levels()
        branch = enc.merge_branch_levels()
        (merge_idx,) = branch
        tap_idx = enc.merge_taps[merge_idx]
        # the skip branch is read at the tap's level, 8 levels above the
        # main branch (conv + PAF + conv)
        assert branch[merge_idx] == levels[tap_idx]
        assert branch[merge_idx] - levels[merge_idx] == 8


class TestCompilerRejections:
    def test_compile_cnn_rejects_residual_blocks(self):
        model, _ = _trained_block_net(stride=1, ch_out=2)
        with pytest.raises(TypeError, match="compile_resnet"):
            compile_cnn(model, (1, 4, 4), BLOCK_PARAMS)

    def test_leading_residual_block_rejected(self):
        """A model opening with a block has no stem to zero the packed
        input's replica half — compile must refuse."""
        model = Sequential(BasicBlock(1, 1, 1, track_running_stats=True))
        with pytest.raises(TypeError, match="stem"):
            compile_resnet(model, (1, 4, 4), BLOCK_PARAMS, num_shards=1)

    def test_standalone_bn_rejected(self):
        model = Sequential(
            Conv2d(1, 2, 3, padding=1),
            AvgPool2d(2),
            BatchNorm2d(2, track_running_stats=True),
            Flatten(),
            Linear(8, 2),
        )
        with pytest.raises(TypeError, match="standalone BatchNorm"):
            compile_resnet(model, (1, 4, 4), MINI_PARAMS, num_shards=1)


# ----------------------------------------------------------------------
# analytic cost model consistency
# ----------------------------------------------------------------------
class TestShardedCostModel:
    def test_predict_shards_round_trip(self):
        """encrypt shards -> forward -> decrypt -> argmax matches the
        plaintext prediction on a fast PAF-free mini net."""
        rng = np.random.default_rng(5)
        model = Sequential(
            Conv2d(2, 4, 3, padding=1, rng=rng),
            AvgPool2d(2),
            Flatten(),
            Linear(16, 3, rng=rng),
        )
        model.eval()
        enc = compile_resnet(model, (2, 4, 4), MINI_PARAMS, num_shards=2, seed=0)
        x = rng.normal(size=32)
        ref = model(Tensor(x.reshape(1, 2, 4, 4))).data.ravel()
        assert enc.predict_shards(x, 3) == int(np.argmax(ref))

    def test_sharded_counts_match_measured_mini_net(self):
        """The analytic per-layer sharded-matvec counts reproduce the
        measured rotation/decompose counts of the executor."""
        from repro.ckks.instrumentation import CountingEvaluator

        rng = np.random.default_rng(0)
        model = Sequential(
            Conv2d(2, 4, 3, padding=1, rng=rng),
            Flatten(),
            Linear(64, 3, rng=rng),
        )
        model.eval()
        enc = compile_resnet(model, (2, 4, 4), MINI_PARAMS, num_shards=2, seed=0)
        counting = CountingEvaluator(enc.ev)
        cts = enc.encrypt_batch_shards([np.zeros(32)])
        counting.reset()
        enc.forward_shards(cts, ev=counting)
        expected = {"rotate": 0, "rotate_hoisted": 0, "hoist_decompose": 0,
                    "pt_mult": 0, "rescale": 0}
        for plans in enc.shard_plans.values():
            c = sharded_matvec_op_counts(plans)
            for k in expected:
                expected[k] += c[k]
        # the only extra keyswitches are the head layer's per-shard
        # replication rotations (the conv's 2 output shards)
        assert counting.counts["rotate"] == expected["rotate"] + 2
        assert counting.counts["rotate_hoisted"] == expected["rotate_hoisted"]
        assert counting.counts["hoist_decompose"] == expected["hoist_decompose"]
        assert counting.counts["mul_plain"] == expected["pt_mult"]
        assert counting.counts["rescale"] == expected["rescale"]

    def test_merge_counts_identity_and_projection(self):
        identity = residual_merge_op_counts(2)
        assert identity == {
            "rotate": 0, "rotate_hoisted": 0, "hoist_decompose": 0,
            "pt_mult": 2, "rescale": 2, "add": 2,
        }
        gap0 = residual_merge_op_counts(2, level_gap=0)
        assert gap0["pt_mult"] == 0 and gap0["add"] == 2
        from repro.fhe.linear import diagonals_of, plan_matvec

        w = np.random.default_rng(1).normal(size=(8, 8))
        plan = plan_matvec(diagonals_of(w, 64).keys(), 8)
        proj = residual_merge_op_counts(2, proj_plans=[[plan, None], [None, plan]])
        assert proj["rotate"] == 2 * sum(1 for g in plan.giant_steps if g) + 2
        assert proj["rescale"] == 2 + 2

    def test_analytic_costs_price_every_charged_op(self):
        """Unit-price micros make the cost equal the op-count total, and a
        projection merge always costs more than an identity one."""
        from repro.fhe.linear import diagonals_of, plan_matvec

        micros = {k: 1.0 for k in (
            "rotate", "rotate_hoisted", "hoist_decompose", "pt_mult",
            "rescale", "add",
        )}
        w = np.random.default_rng(2).normal(size=(8, 8))
        plan = plan_matvec(diagonals_of(w, 64).keys(), 8)
        plans = [[plan, plan], [plan, plan]]
        counts = sharded_matvec_op_counts(plans)
        assert analytic_sharded_matvec_cost(plans, micros) == sum(counts.values())
        identity_cost = analytic_residual_merge_cost(2, micros)
        proj_cost = analytic_residual_merge_cost(2, micros, proj_plans=plans)
        assert proj_cost > identity_cost > 0
        # gap 0 drops the alignment ops but never the per-shard adds
        assert analytic_residual_merge_cost(2, micros, level_gap=0) == 2


# ----------------------------------------------------------------------
# the trained toy ResNet, end to end (session-scoped compile)
# ----------------------------------------------------------------------
class TestToyResnetEndToEnd:
    def test_acceptance_geometry(self, toy_resnet):
        """≥2 residual blocks, ≥1 stride-2 downsample (projection merge),
        channels sharded across ≥2 ciphertexts."""
        _, enc = toy_resnet
        kinds = [layer.kind for layer in enc.layers]
        assert kinds.count("residual") == 2 and kinds.count("merge") == 2
        merges = [layer for layer in enc.layers if layer.kind == "merge"]
        assert sum(1 for m in merges if m.blocks is not None) == 1
        widest = max(
            len(plans) for plans in enc.shard_plans.values()
        )
        assert widest >= 2  # some layer writes >= 2 output shards
        assert enc.sharded

    def test_single_request_matches_plaintext_logits(self, toy_resnet):
        model, enc = toy_resnet
        rng = np.random.default_rng(11)
        x = rng.normal(size=(1, 1, 8, 8))
        ref = model(Tensor(x)).data.ravel()
        out = enc.forward_shards(enc.encrypt_input_shards(x.ravel()))
        got = enc.decrypt_logits(out[0], 3)
        np.testing.assert_allclose(got, ref, rtol=1e-3, atol=1e-4)

    def test_batched_via_serve_artifact(self, toy_resnet):
        """The acceptance path: SIMD-batched requests through the
        pre-encoded ModelArtifact match per-row plaintext logits, and a
        second batch is a pure cache hit."""
        model, enc = toy_resnet
        rng = np.random.default_rng(12)
        xs = [rng.normal(size=64) for _ in range(enc.max_batch)]
        ref = model(Tensor(np.stack(xs).reshape(-1, 1, 8, 8))).data
        artifact = ModelArtifact(enc)
        artifact.prewarm_activations()
        out = artifact.forward(enc.encrypt_batch_shards(xs))
        got = enc.decrypt_logits(out[0], 3, batch=len(xs))
        np.testing.assert_allclose(got, ref, rtol=1e-3, atol=1e-4)
        misses_before = artifact.cache.misses
        artifact.forward(enc.encrypt_batch_shards(xs))
        assert artifact.cache.misses == misses_before

    def test_inference_server_detects_sharded_model(self, toy_resnet):
        """The full serving stack: InferenceServer routes sharded models
        through encrypt_batch_shards/forward_shards and validates the
        sharded input width at the door."""
        from repro.serve import InferenceServer

        model, enc = toy_resnet
        rng = np.random.default_rng(13)
        xs = [rng.normal(size=64) for _ in range(enc.max_batch)]
        ref = model(Tensor(np.stack(xs).reshape(-1, 1, 8, 8))).data
        with InferenceServer(
            ModelArtifact(enc), num_classes=3, num_workers=1, warm=False,
            max_wait_ms=50,
        ) as srv:
            with pytest.raises(ValueError, match="sharded input dim"):
                srv.submit(np.zeros(63))
            results = srv.predict_many(xs)
        for row, res in zip(ref, results):
            np.testing.assert_allclose(res.logits, row, rtol=1e-3, atol=1e-4)
            assert res.prediction == int(np.argmax(row))

    def test_level_schedule_consumed_exactly(self, toy_resnet):
        _, enc = toy_resnet
        out = enc.forward_shards(enc.encrypt_input_shards(np.zeros(64)))
        depth_needed = enc.graph.total_depth()
        assert enc.ctx.max_level - out[0].level == depth_needed == 31

    def test_galois_keys_cover_forward(self, toy_resnet):
        """The compiled key set suffices (no KeyError in the fixture's
        forwards) and stays far below one key per naive diagonal."""
        _, enc = toy_resnet
        naive_steps = {
            d
            for plans in enc.shard_plans.values()
            for row in plans
            for p in row
            if p is not None
            for d in p.diag_steps
        }
        assert len(enc.keys.galois) < len(naive_steps)
