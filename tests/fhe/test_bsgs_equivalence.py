"""Differential suite: BSGS matvec vs the naive reference implementation.

Every test decrypts both paths on the *same* ciphertext and asserts the
results agree within 1e-3 (the acceptance bar) — rectangular, square and
explicitly zero-padded weights, every SIMD block count, hypothesis-driven
random matrices, and the compiled end-to-end network.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import CkksContext, CkksEvaluator, CkksParams, keygen
from repro.fhe.linear import (
    bsgs_diagonals,
    diagonals_of,
    encrypted_matvec,
    encrypted_matvec_bsgs,
    plan_matvec,
)

SIZE = 8  # shared diagonal index space: keys cover every step < SIZE


@pytest.fixture(scope="module")
def rt():
    """One context whose Galois keys cover naive + BSGS paths for any
    matrix with max dim <= SIZE (steps 1..SIZE-1 suffice for both)."""
    ctx = CkksContext(CkksParams(n=256, scale_bits=25, depth=2))
    keys = keygen(ctx, seed=0, galois_steps=tuple(range(1, SIZE)))
    return ctx, CkksEvaluator(ctx, keys)


def _pack(ctx, x, size, num_blocks=1, stride=None):
    """Wraparound-replicated block packing (the network's layout)."""
    stride = stride or 2 * size
    xs = np.atleast_2d(x)
    packed = np.zeros(ctx.slots)
    for b, row in enumerate(xs):
        xr = np.zeros(size)
        xr[: len(row)] = row
        packed[b * stride : b * stride + size] = xr
        packed[b * stride + size : b * stride + 2 * size] = xr
    return packed


def _both_paths(ev, ct, w=None, diagonals=None, groups=None, num_values=None, **kw):
    if diagonals is not None:
        naive = encrypted_matvec(ev, ct, diagonals=diagonals, **kw)
        bsgs = encrypted_matvec_bsgs(ev, ct, groups=groups, **kw)
    else:
        naive = encrypted_matvec(ev, ct, w, **kw)
        bsgs = encrypted_matvec_bsgs(ev, ct, w, **kw)
    return (
        ev.decrypt(naive, num_values=num_values),
        ev.decrypt(bsgs, num_values=num_values),
    )


class TestShapes:
    @pytest.mark.parametrize(
        "shape", [(8, 8), (3, 8), (8, 3), (5, 7), (7, 5), (1, 8), (8, 1)]
    )
    def test_rectangular_and_square(self, rt, shape):
        ctx, ev = rt
        rng = np.random.default_rng(sum(shape))
        w = rng.normal(size=shape)
        x = rng.normal(size=shape[1])
        ct = ev.encrypt(_pack(ctx, x, max(shape)))
        naive, bsgs = _both_paths(ev, ct, w, num_values=shape[0])
        np.testing.assert_allclose(bsgs, naive, atol=1e-3)
        np.testing.assert_allclose(bsgs, w @ x, atol=5e-3)

    def test_explicitly_padded_weight(self, rt):
        """A 3x5 matrix zero-padded to 8x8 (the compile_mlp layout)."""
        ctx, ev = rt
        rng = np.random.default_rng(1)
        w = np.zeros((SIZE, SIZE))
        w[:3, :5] = rng.normal(size=(3, 5))
        x = np.zeros(SIZE)
        x[:5] = rng.normal(size=5)
        ct = ev.encrypt(_pack(ctx, x, SIZE))
        naive, bsgs = _both_paths(ev, ct, w, num_values=3)
        np.testing.assert_allclose(bsgs, naive, atol=1e-3)
        np.testing.assert_allclose(bsgs, (w @ x)[:3], atol=5e-3)

    def test_bias(self, rt):
        ctx, ev = rt
        rng = np.random.default_rng(2)
        w = rng.normal(size=(6, 6))
        x, b = rng.normal(size=6), rng.normal(size=6)
        ct = ev.encrypt(_pack(ctx, x, 6))
        naive, bsgs = _both_paths(ev, ct, w, bias=b, num_values=6)
        np.testing.assert_allclose(bsgs, naive, atol=1e-3)
        np.testing.assert_allclose(bsgs, w @ x + b, atol=5e-3)

    def test_level_and_scale_match_naive(self, rt):
        ctx, ev = rt
        rng = np.random.default_rng(3)
        w = rng.normal(size=(6, 6))
        ct = ev.encrypt(_pack(ctx, rng.normal(size=6), 6))
        naive = encrypted_matvec(ev, ct, w)
        bsgs = encrypted_matvec_bsgs(ev, ct, w)
        assert bsgs.level == naive.level == ct.level - 1
        assert abs(bsgs.scale - naive.scale) < 1e-6 * naive.scale


class TestBlockCounts:
    @pytest.mark.parametrize("num_blocks", list(range(1, 9)))
    def test_every_block_count(self, rt, num_blocks):
        """slots=128, size=8, stride=16: all 1..8 block counts fit."""
        ctx, ev = rt
        rng = np.random.default_rng(num_blocks)
        w = rng.normal(size=(6, 8))
        stride = 2 * SIZE
        diags = diagonals_of(w, ctx.slots, num_blocks=num_blocks, block_stride=stride)
        plan = plan_matvec(diags.keys(), SIZE)
        groups = bsgs_diagonals(diags, plan)
        xs = rng.normal(size=(num_blocks, 8))
        ct = ev.encrypt(_pack(ctx, xs, SIZE, num_blocks=num_blocks))
        span = (num_blocks - 1) * stride + 6
        naive, bsgs = _both_paths(
            ev, ct, diagonals=diags, groups=groups, num_values=span
        )
        np.testing.assert_allclose(bsgs, naive, atol=1e-3)
        for b in range(num_blocks):
            np.testing.assert_allclose(
                bsgs[b * stride : b * stride + 6], w @ xs[b], atol=5e-3
            )


class TestHypothesisRandomMatrices:
    @given(
        out_dim=st.integers(min_value=1, max_value=SIZE),
        in_dim=st.integers(min_value=1, max_value=SIZE),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        sparsity=st.floats(min_value=0.0, max_value=0.8),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_matrix_equivalence(self, rt, out_dim, in_dim, seed, sparsity):
        ctx, ev = rt
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(out_dim, in_dim))
        w[rng.random(w.shape) < sparsity] = 0.0
        if not np.any(w):
            w[0, 0] = 1.0  # keep at least one nonzero diagonal
        x = rng.normal(size=in_dim)
        ct = ev.encrypt(_pack(ctx, x, max(out_dim, in_dim)))
        naive, bsgs = _both_paths(ev, ct, w, num_values=out_dim)
        np.testing.assert_allclose(bsgs, naive, atol=1e-3)
        np.testing.assert_allclose(bsgs, w @ x, atol=5e-3)


class TestEndToEndNetwork:
    @pytest.fixture(scope="class")
    def compiled(self, toy_reference_enc):
        return toy_reference_enc

    @pytest.mark.parametrize("batch", [1, 2, 3])
    def test_logits_equal_across_batch_sizes(self, compiled, batch):
        enc = compiled
        rng = np.random.default_rng(batch)
        xs = rng.normal(size=(batch, 8))
        ct = enc.encrypt_batch(xs)
        bsgs = enc.decrypt_logits(enc.forward(ct), 3, batch=batch)
        naive = enc.decrypt_logits(enc.forward(ct, mode="reference"), 3, batch=batch)
        # mode="reference" also swaps the activation path (ladder instead of
        # Paterson–Stockmeyer), whose noise differs slightly — the bar is
        # wider than the matvec-only 1e-3 (activation differentials are
        # pinned tightly in tests/fhe/test_paf_eval.py)
        np.testing.assert_allclose(bsgs, naive, atol=5e-3)

    def test_all_layers_planned_bsgs(self, compiled):
        for plan in compiled.matvec_plans.values():
            assert plan.use_bsgs
            assert plan.bsgs_keyswitches < plan.naive_keyswitches

    def test_reference_with_encoded_provider_rejected(self, compiled):
        enc = compiled
        ct = enc.encrypt_batch([np.zeros(8)])
        with pytest.raises(ValueError):
            enc.forward(ct, encoded=lambda *a: None, mode="reference")

    def test_production_compile_drops_reference_diagonals(self, toy_plain_enc):
        """Without reference_keys, BSGS layers keep only their pre-rotated
        groups (no duplicate flat diagonals) and the reference path fails
        with a clear error instead of a missing-key KeyError."""
        enc = toy_plain_enc
        for i, plan in enc.matvec_plans.items():
            assert plan.use_bsgs
            assert i in enc.linear_groups
            assert i not in enc.linear_diagonals
        with pytest.raises(ValueError, match="reference_keys"):
            enc.forward(enc.encrypt_batch([np.zeros(8)]), mode="reference")
