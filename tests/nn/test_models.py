"""Model topology tests: the paper's exact non-polynomial inventories."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn import Adam, MaxPool2d, ReLU, Tensor
from repro.nn.models import MLP, VGG19, ResNet18, SmallCNN, resnet18, vgg19


def count_nonpoly(model):
    relus = sum(1 for _, m in model.named_modules() if isinstance(m, ReLU))
    pools = sum(1 for _, m in model.named_modules() if isinstance(m, MaxPool2d))
    return relus, pools


class TestResNet18:
    def test_paper_nonpoly_inventory(self):
        """Sec. 5.1: ResNet-18 has 17 ReLU and 1 MaxPooling."""
        model = resnet18(base_width=8, seed=0)
        assert count_nonpoly(model) == (17, 1)

    def test_forward_shape(self):
        model = resnet18(num_classes=7, base_width=8, seed=0)
        out = model(Tensor(np.zeros((2, 3, 32, 32))))
        assert out.shape == (2, 7)

    def test_forward_shape_64px(self):
        model = resnet18(num_classes=5, base_width=8, seed=0)
        out = model(Tensor(np.zeros((1, 3, 64, 64))))
        assert out.shape == (1, 5)

    def test_full_width_parameter_count(self):
        """Paper-scale ResNet-18 should be ~11M parameters."""
        model = resnet18(num_classes=1000, base_width=64, seed=0)
        n = model.num_parameters()
        assert 11_000_000 < n < 12_500_000

    def test_deterministic_seed(self):
        a = resnet18(base_width=8, seed=3)
        b = resnet18(base_width=8, seed=3)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 32, 32)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_backward_reaches_all_parameters(self):
        model = resnet18(base_width=4, seed=0)
        out = model(Tensor(np.random.default_rng(1).normal(size=(2, 3, 32, 32))))
        F.cross_entropy(out, np.array([0, 1])).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_one_step_reduces_loss(self):
        rng = np.random.default_rng(2)
        model = resnet18(base_width=4, num_classes=4, seed=0)
        x, y = rng.normal(size=(8, 3, 32, 32)), rng.integers(0, 4, 8)
        opt = Adam(model.parameters(), lr=1e-3)
        losses = []
        for _ in range(5):
            loss = F.cross_entropy(model(Tensor(x)), y)
            losses.append(loss.item())
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert losses[-1] < losses[0]


class TestVGG19:
    def test_paper_nonpoly_inventory(self):
        """Sec. 5.1: VGG-19 has 18 ReLU and 5 MaxPooling."""
        model = vgg19(base_width=4, input_size=32, seed=0)
        assert count_nonpoly(model) == (18, 5)

    def test_forward_shape(self):
        model = vgg19(num_classes=10, base_width=4, input_size=32, seed=0)
        out = model(Tensor(np.zeros((2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_too_small_input_rejected(self):
        with pytest.raises(ValueError):
            vgg19(input_size=16)

    def test_backward_reaches_all_parameters(self):
        model = vgg19(base_width=2, input_size=32, seed=0)
        out = model(Tensor(np.random.default_rng(1).normal(size=(2, 3, 32, 32))))
        F.cross_entropy(out, np.array([0, 1])).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []


class TestSmallModels:
    def test_small_cnn_inventory(self):
        model = SmallCNN(seed=0)
        assert count_nonpoly(model) == (3, 1)

    def test_small_cnn_shapes(self):
        model = SmallCNN(num_classes=4, base_width=4, input_size=16, seed=0)
        assert model(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 4)

    def test_mlp_shapes(self):
        model = MLP(12, hidden=(8, 8), num_classes=3, seed=0)
        assert model(Tensor(np.zeros((5, 12)))).shape == (5, 3)

    def test_mlp_relu_count(self):
        model = MLP(12, hidden=(8, 8, 8), num_classes=3, seed=0)
        relus, _ = count_nonpoly(model)
        assert relus == 3
