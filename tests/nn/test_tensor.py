"""Autograd engine tests: every op gradient-checked numerically."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn w.r.t. x."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return g


def check_grad(build, x0: np.ndarray, rtol=1e-5, atol=1e-7):
    """Compare autograd grad of sum(build(Tensor)) against numeric grad."""
    t = Tensor(x0.copy(), requires_grad=True)
    out = build(t).sum()
    out.backward()

    def scalar_fn(arr):
        return float(build(Tensor(arr)).sum().data)

    expected = numeric_grad(scalar_fn, x0.copy())
    np.testing.assert_allclose(t.grad, expected, rtol=rtol, atol=atol)


RNG = np.random.default_rng(42)


class TestBasicOps:
    def test_add_grad(self):
        check_grad(lambda t: t + 3.0, RNG.normal(size=(3, 4)))

    def test_add_two_tensors(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_broadcast_add_grad(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_grad(self):
        check_grad(lambda t: t * t * 2.0, RNG.normal(size=(5,)))

    def test_sub_neg_grad(self):
        check_grad(lambda t: (-t) - t * 0.5, RNG.normal(size=(4,)))

    def test_rsub(self):
        check_grad(lambda t: 1.0 - t, RNG.normal(size=(4,)))

    def test_div_grad(self):
        check_grad(lambda t: t / 3.0, RNG.normal(size=(4,)))
        check_grad(lambda t: 2.0 / t, RNG.uniform(1.0, 2.0, size=(4,)))

    def test_div_tensor_tensor(self):
        a = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        b = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.5])
        np.testing.assert_allclose(b.grad, [-2.0, -1.0])

    def test_pow_grad(self):
        check_grad(lambda t: t**3, RNG.uniform(0.5, 1.5, size=(6,)))

    def test_pow_rejects_tensor_exponent(self):
        t = Tensor([1.0])
        with pytest.raises(TypeError):
            t ** Tensor([2.0])

    def test_matmul_grad(self):
        a0 = RNG.normal(size=(3, 4))
        b = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        a = Tensor(a0.copy(), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a0.T @ np.ones((3, 2)))

    def test_chain_rule_through_shared_node(self):
        """y = x*x used twice: gradients must accumulate."""
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x
        z = y + y
        z.backward()
        np.testing.assert_allclose(x.grad, [12.0])  # d(2x^2)/dx = 4x


class TestShapeOps:
    def test_reshape_grad(self):
        check_grad(lambda t: (t.reshape(2, 6) * 2.0), RNG.normal(size=(3, 4)))

    def test_flatten_from(self):
        t = Tensor(RNG.normal(size=(2, 3, 4, 5)))
        assert t.flatten_from(1).shape == (2, 60)
        assert t.flatten_from(2).shape == (2, 3, 20)

    def test_transpose_grad(self):
        check_grad(lambda t: t.transpose(1, 0) * 3.0, RNG.normal(size=(3, 4)))

    def test_T_property(self):
        t = Tensor(RNG.normal(size=(2, 5)))
        assert t.T.shape == (5, 2)

    def test_getitem_grad(self):
        x = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_fancy_indexing_accumulates(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])


class TestReductions:
    def test_sum_axis_grad(self):
        check_grad(lambda t: t.sum(axis=0), RNG.normal(size=(3, 4)))
        check_grad(lambda t: t.sum(axis=1, keepdims=True), RNG.normal(size=(3, 4)))

    def test_mean_grad(self):
        check_grad(lambda t: t.mean(), RNG.normal(size=(3, 4)))
        check_grad(lambda t: t.mean(axis=(0, 1)), RNG.normal(size=(2, 3, 4)))

    def test_var_matches_numpy(self):
        x = RNG.normal(size=(6, 5))
        t = Tensor(x)
        np.testing.assert_allclose(t.var(axis=0).data, x.var(axis=0), rtol=1e-12)

    def test_var_grad(self):
        check_grad(lambda t: t.var(axis=0), RNG.normal(size=(4, 3)), rtol=1e-4)


class TestNonlinearities:
    def test_relu_grad(self):
        x = np.array([-2.0, -0.1, 0.5, 3.0])
        t = Tensor(x, requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0, 0, 1, 1])

    def test_exp_log_sqrt_abs_grads(self):
        check_grad(lambda t: t.exp(), RNG.normal(size=(5,)))
        check_grad(lambda t: t.log(), RNG.uniform(0.5, 2.0, size=(5,)))
        check_grad(lambda t: t.sqrt(), RNG.uniform(0.5, 2.0, size=(5,)))
        check_grad(lambda t: t.abs(), RNG.uniform(0.2, 1.0, size=(5,)))


class TestAutogradMechanics:
    def test_backward_requires_grad(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(t.grad, [3.0, 30.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_detach(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        np.testing.assert_allclose(d.data, t.data)

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 1.0).sum().backward()
        (t * 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [2.0])

    def test_zero_grad(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 1.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_deep_graph_no_recursion_error(self):
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(3000):
            out = out * 1.0001
        out.sum().backward()
        assert t.grad is not None

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor(2.0), Tensor)

    @given(st.floats(min_value=-2, max_value=2, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_polynomial_identity_grad(self, x0):
        """d/dx (3x^2 + 2x) = 6x + 2 for arbitrary x."""
        t = Tensor([x0], requires_grad=True)
        (3.0 * t * t + 2.0 * t).sum().backward()
        assert t.grad[0] == pytest.approx(6 * x0 + 2, rel=1e-9, abs=1e-9)
