"""Gradient checks and reference comparisons for NN functional ops."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn import Tensor

RNG = np.random.default_rng(7)


def numeric_grad(fn, x, eps=1e-6):
    g = np.zeros_like(x)
    flat, gflat = x.reshape(-1), g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return g


def naive_conv2d(x, w, b, stride, padding):
    """Straightforward quadruple-loop convolution as the gold reference."""
    n, ic, h, ww_ = x.shape
    oc, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (ww_ + 2 * padding - kw) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    for i in range(oh):
        for j in range(ow):
            patch = xp[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("nchw,ochw->no", patch, w)
    if b is not None:
        out += b[None, :, None, None]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 3)])
    def test_forward_matches_naive(self, stride, padding):
        x = RNG.normal(size=(2, 3, 8, 8))
        w = RNG.normal(size=(4, 3, 3, 3))
        b = RNG.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride, padding)
        np.testing.assert_allclose(
            out.data, naive_conv2d(x, w, b, stride, padding), rtol=1e-10, atol=1e-12
        )

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))))

    def test_grad_x(self):
        x0 = RNG.normal(size=(1, 2, 5, 5))
        w = Tensor(RNG.normal(size=(3, 2, 3, 3)))
        xt = Tensor(x0.copy(), requires_grad=True)
        F.conv2d(xt, w, None, stride=2, padding=1).sum().backward()

        def f(arr):
            return float(F.conv2d(Tensor(arr), w, None, 2, 1).sum().data)

        np.testing.assert_allclose(xt.grad, numeric_grad(f, x0.copy()), rtol=1e-5, atol=1e-7)

    def test_grad_w_and_b(self):
        x = Tensor(RNG.normal(size=(2, 2, 6, 6)))
        w0 = RNG.normal(size=(2, 2, 3, 3))
        b0 = RNG.normal(size=2)
        wt = Tensor(w0.copy(), requires_grad=True)
        bt = Tensor(b0.copy(), requires_grad=True)
        F.conv2d(x, wt, bt, stride=1, padding=1).sum().backward()

        def fw(arr):
            return float(F.conv2d(x, Tensor(arr), Tensor(b0), 1, 1).sum().data)

        def fb(arr):
            return float(F.conv2d(x, Tensor(w0), Tensor(arr), 1, 1).sum().data)

        np.testing.assert_allclose(wt.grad, numeric_grad(fw, w0.copy()), rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(bt.grad, numeric_grad(fb, b0.copy()), rtol=1e-6, atol=1e-8)


class TestPooling:
    def test_maxpool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_padding_uses_neg_inf(self):
        x = -np.ones((1, 1, 3, 3))
        out = F.max_pool2d(Tensor(x), 3, stride=2, padding=1)
        # all windows contain a real -1; padding must not contribute 0
        assert np.all(out.data == -1.0)

    def test_maxpool_grad_routes_to_argmax(self):
        x0 = RNG.normal(size=(1, 1, 4, 4))
        xt = Tensor(x0.copy(), requires_grad=True)
        F.max_pool2d(xt, 2).sum().backward()
        # each window contributes gradient 1 at its argmax
        assert xt.grad.sum() == pytest.approx(4.0)
        assert ((xt.grad == 0) | (xt.grad == 1)).all()

    def test_maxpool_grad_numeric(self):
        x0 = RNG.normal(size=(2, 2, 6, 6))
        xt = Tensor(x0.copy(), requires_grad=True)
        F.max_pool2d(xt, 3, stride=2, padding=1).sum().backward()

        def f(arr):
            return float(F.max_pool2d(Tensor(arr), 3, 2, 1).sum().data)

        np.testing.assert_allclose(xt.grad, numeric_grad(f, x0.copy()), rtol=1e-5, atol=1e-7)

    def test_avgpool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_grad(self):
        x0 = RNG.normal(size=(1, 2, 4, 4))
        xt = Tensor(x0.copy(), requires_grad=True)
        F.avg_pool2d(xt, 2).sum().backward()
        np.testing.assert_allclose(xt.grad, np.full_like(x0, 0.25))

    def test_global_avg_pool(self):
        x = RNG.normal(size=(2, 3, 5, 5))
        out = F.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(out.data[..., 0, 0], x.mean(axis=(2, 3)))


class TestBatchNorm:
    def test_normalises_batch(self):
        x = Tensor(RNG.normal(2.0, 3.0, size=(8, 4, 5, 5)))
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        out = F.batch_norm2d(
            x, gamma, beta, np.zeros(4), np.ones(4), training=True
        )
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_grad_numeric(self):
        x0 = RNG.normal(size=(4, 2, 3, 3))
        g0 = RNG.uniform(0.5, 1.5, size=2)
        b0 = RNG.normal(size=2)
        xt = Tensor(x0.copy(), requires_grad=True)
        gt = Tensor(g0.copy(), requires_grad=True)
        bt = Tensor(b0.copy(), requires_grad=True)
        # weight the output so grads aren't the trivial all-ones case
        w = RNG.normal(size=(4, 2, 3, 3))
        (F.batch_norm2d(xt, gt, bt, np.zeros(2), np.ones(2), True) * Tensor(w)).sum().backward()

        def fx(arr):
            out = F.batch_norm2d(Tensor(arr), Tensor(g0), Tensor(b0), np.zeros(2), np.ones(2), True)
            return float((out * Tensor(w)).sum().data)

        np.testing.assert_allclose(xt.grad, numeric_grad(fx, x0.copy()), rtol=1e-4, atol=1e-6)

    def test_tracking_updates_running_stats(self):
        rm, rv = np.zeros(2), np.ones(2)
        x = Tensor(RNG.normal(5.0, 2.0, size=(16, 2, 4, 4)))
        F.batch_norm2d(
            x, Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv,
            training=True, track_running_stats=True, momentum=0.5,
        )
        assert rm[0] != 0.0  # moved toward the batch mean
        assert abs(rm[0] - 2.5) < 1.0

    def test_no_tracking_uses_batch_stats_in_eval(self):
        """Tab. 5: BatchNorm Tracking False — eval still uses batch stats."""
        rm, rv = np.zeros(2), np.ones(2)
        x = Tensor(RNG.normal(5.0, 2.0, size=(16, 2, 4, 4)))
        out = F.batch_norm2d(
            x, Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv,
            training=False, track_running_stats=False,
        )
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0, atol=1e-10)
        np.testing.assert_array_equal(rm, 0.0)  # never touched


class TestLossesAndDropout:
    def test_log_softmax_normalised(self):
        x = Tensor(RNG.normal(size=(5, 7)))
        ls = F.log_softmax(x)
        np.testing.assert_allclose(np.exp(ls.data).sum(axis=1), 1.0, rtol=1e-12)

    def test_log_softmax_grad(self):
        x0 = RNG.normal(size=(3, 4))
        xt = Tensor(x0.copy(), requires_grad=True)
        w = RNG.normal(size=(3, 4))
        (F.log_softmax(xt) * Tensor(w)).sum().backward()

        def f(arr):
            return float((F.log_softmax(Tensor(arr)) * Tensor(w)).sum().data)

        np.testing.assert_allclose(xt.grad, numeric_grad(f, x0.copy()), rtol=1e-5, atol=1e-7)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(10))

    def test_cross_entropy_grad_is_softmax_minus_onehot(self):
        x0 = RNG.normal(size=(3, 5))
        y = np.array([1, 0, 4])
        xt = Tensor(x0.copy(), requires_grad=True)
        F.cross_entropy(xt, y).backward()
        p = np.exp(x0) / np.exp(x0).sum(axis=1, keepdims=True)
        onehot = np.eye(5)[y]
        np.testing.assert_allclose(xt.grad, (p - onehot) / 3, rtol=1e-8, atol=1e-10)

    def test_softmax(self):
        x = Tensor(RNG.normal(size=(2, 3)))
        s = F.softmax(x)
        np.testing.assert_allclose(s.data.sum(axis=1), 1.0, rtol=1e-12)
        assert (s.data > 0).all()

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0]])
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_dropout_eval_identity(self):
        x = Tensor(RNG.normal(size=(100,)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_scales_kept_units(self):
        x = Tensor(np.ones(10_000))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        kept = out.data[out.data != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert abs(out.data.mean() - 1.0) < 0.05  # inverted scaling preserves E[x]

    def test_dropout_grad_masks(self):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = F.dropout(x, 0.3, training=True, rng=np.random.default_rng(1))
        out.sum().backward()
        np.testing.assert_allclose(x.grad[out.data == 0], 0.0)


class TestPad:
    def test_pad_and_grad(self):
        x = Tensor(RNG.normal(size=(1, 1, 3, 3)), requires_grad=True)
        out = F.pad2d(x, 2)
        assert out.shape == (1, 1, 7, 7)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 3, 3)))

    def test_pad_zero_is_identity(self):
        x = Tensor(RNG.normal(size=(1, 1, 3, 3)))
        assert F.pad2d(x, 0) is x
