"""Module system, layers, optimizers, SWA tests."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn import (
    SGD,
    Adam,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    SWAAverager,
    Tensor,
)


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.act = ReLU()
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestModuleMechanics:
    def test_named_parameters(self):
        net = TinyNet()
        names = dict(net.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_parameters_are_parameters(self):
        net = TinyNet()
        assert all(isinstance(p, Parameter) for p in net.parameters())

    def test_named_modules(self):
        net = TinyNet()
        names = [n for n, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "act" in names

    def test_train_eval_propagates(self):
        net = TinyNet()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_freeze_unfreeze(self):
        net = TinyNet()
        net.freeze()
        assert all(not p.requires_grad for p in net.parameters())
        net.unfreeze()
        assert all(p.requires_grad for p in net.parameters())

    def test_zero_grad(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net1, net2 = TinyNet(), TinyNet()
        for p in net2.parameters():
            p.data = p.data + 1.0
        x = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
        assert not np.allclose(net1(x).data, net2(x).data)
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_allclose(net1(x).data, net2(x).data)

    def test_load_state_dict_unknown_key(self):
        net = TinyNet()
        with pytest.raises(KeyError):
            net.load_state_dict({"nope": np.zeros(1)})

    def test_load_state_dict_shape_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_state_dict_copies(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][:] = 99.0
        assert not np.any(net.fc1.weight.data == 99.0)

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_buffers_in_state_dict(self):
        bn = BatchNorm2d(3)
        state = bn.state_dict()
        assert "buffer::running_mean" in state
        state["buffer::running_mean"] = np.full(3, 7.0)
        bn.load_state_dict(state)
        np.testing.assert_allclose(bn.running_mean, 7.0)


class TestSequential:
    def test_iteration_and_indexing(self):
        seq = Sequential(Linear(2, 3), ReLU(), Linear(3, 1))
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
        assert isinstance(seq[-1], Linear)
        assert len(list(seq)) == 3

    def test_setitem_replaces_layer(self):
        seq = Sequential(Linear(2, 2), ReLU())
        marker = Flatten()
        seq[1] = marker
        assert seq[1] is marker
        # replacement visible via named_modules (surgery requirement)
        assert any(m is marker for _, m in seq.named_modules())

    def test_setitem_out_of_range(self):
        seq = Sequential(ReLU())
        with pytest.raises(IndexError):
            seq[5] = ReLU()

    def test_append(self):
        seq = Sequential(Linear(2, 2))
        seq.append(ReLU())
        assert len(seq) == 2

    def test_slice(self):
        seq = Sequential(Linear(2, 2), ReLU(), Linear(2, 2))
        head = seq[:2]
        assert len(head) == 2

    def test_forward_composes(self):
        rng = np.random.default_rng(0)
        l1, l2 = Linear(3, 3, rng=rng), Linear(3, 3, rng=rng)
        seq = Sequential(l1, l2)
        x = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_allclose(seq(x).data, l2(l1(x)).data)


class TestOptimizers:
    def _quadratic_setup(self):
        # minimise ||p - target||^2
        p = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        return p, target

    def test_sgd_converges(self):
        p, target = self._quadratic_setup()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            loss = ((p - Tensor(target)) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-6)

    def test_sgd_momentum_faster_than_plain(self):
        losses = {}
        for mom in (0.0, 0.9):
            p, target = self._quadratic_setup()
            opt = SGD([p], lr=0.02, momentum=mom)
            for _ in range(50):
                loss = ((p - Tensor(target)) ** 2).sum()
                opt.zero_grad()
                loss.backward()
                opt.step()
            losses[mom] = float(((p.data - target) ** 2).sum())
        assert losses[0.9] < losses[0.0]

    def test_adam_converges(self):
        p, target = self._quadratic_setup()
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            loss = ((p - Tensor(target)) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        # zero gradient: only decay acts
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(9.0)

    def test_param_groups_use_own_lr(self):
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0]))
        opt = SGD(
            [
                {"params": [a], "lr": 0.1},
                {"params": [b], "lr": 0.0},
            ],
            lr=999.0,
        )
        a.grad = np.array([1.0])
        b.grad = np.array([1.0])
        opt.step()
        assert a.data[0] == pytest.approx(0.9)
        assert b.data[0] == pytest.approx(1.0)

    def test_frozen_params_skipped(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.5)
        p.grad = np.array([1.0])
        p.requires_grad = False
        opt.step()
        assert p.data[0] == pytest.approx(1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_optimizer_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestSWA:
    def test_average_of_constant_is_constant(self):
        net = TinyNet()
        swa = SWAAverager(net)
        for _ in range(3):
            swa.update(net)
        avg = swa.averaged_state()
        for k, v in net.state_dict().items():
            np.testing.assert_allclose(avg[k], v)

    def test_average_of_two_states(self):
        net = TinyNet()
        s0 = net.state_dict()
        swa = SWAAverager(net)
        for p in net.parameters():
            p.data = p.data + 2.0
        swa.update(net)
        avg = swa.averaged_state()
        np.testing.assert_allclose(avg["fc1.weight"], s0["fc1.weight"] + 1.0)

    def test_load_into(self):
        net = TinyNet()
        swa = SWAAverager(net)
        for p in net.parameters():
            p.data = p.data + 4.0
        swa.update(net)
        swa.load_into(net)
        # now equal to original + 2
        assert swa.count == 2

    def test_structure_change_rejected(self):
        net = TinyNet()
        swa = SWAAverager(net)
        other = Sequential(Linear(2, 2))
        with pytest.raises(ValueError):
            swa.update(other)


class TestLayers:
    def test_conv_layer_shapes(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        out = conv(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_conv_no_bias(self):
        conv = Conv2d(1, 1, 3, bias=False)
        assert conv.bias is None
        assert len(list(conv.named_parameters())) == 1

    def test_linear_shapes(self):
        lin = Linear(5, 2, rng=np.random.default_rng(0))
        assert lin(Tensor(np.zeros((3, 5)))).shape == (3, 2)

    def test_relu_marker(self):
        assert ReLU.is_nonpolynomial
        assert MaxPool2d.is_nonpolynomial

    def test_dropout_toggle(self):
        d = Dropout(p=0.5, seed=0)
        x = Tensor(np.ones(1000))
        d.eval()
        np.testing.assert_array_equal(d(x).data, 1.0)
        d.train()
        assert (d(x).data == 0).any()

    def test_batchnorm_layer(self):
        bn = BatchNorm2d(4)
        x = Tensor(np.random.default_rng(0).normal(3, 2, size=(8, 4, 3, 3)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0, atol=1e-9)
