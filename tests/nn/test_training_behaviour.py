"""Behavioural training tests: convergence, freezing, reproducibility."""

import numpy as np

import repro.nn.functional as F
from repro.nn import SGD, Adam, Tensor, no_grad
from repro.nn.models import MLP, small_cnn


def make_blobs(n=128, d=6, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    means = rng.normal(scale=2.0, size=(classes, d))
    y = rng.integers(0, classes, n)
    x = means[y] + rng.normal(size=(n, d))
    return x, y


class TestConvergence:
    def test_mlp_learns_blobs(self):
        x, y = make_blobs()
        model = MLP(6, hidden=(16,), num_classes=3, seed=0)
        opt = Adam(model.parameters(), lr=1e-2)
        for _ in range(60):
            loss = F.cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert F.accuracy(model(Tensor(x)), y) > 0.95

    def test_sgd_and_adam_both_converge(self):
        x, y = make_blobs(seed=1)
        for opt_cls, lr in ((SGD, 0.1), (Adam, 1e-2)):
            model = MLP(6, hidden=(12,), num_classes=3, seed=2)
            opt = opt_cls(model.parameters(), lr=lr)
            first = None
            for _ in range(40):
                loss = F.cross_entropy(model(Tensor(x)), y)
                if first is None:
                    first = loss.item()
                opt.zero_grad()
                loss.backward()
                opt.step()
            assert loss.item() < first * 0.5

    def test_frozen_layers_do_not_move(self):
        x, y = make_blobs(seed=2)
        model = MLP(6, hidden=(8,), num_classes=3, seed=3)
        first_linear = model.body[0]
        head = model.body[-1]
        frozen_snapshot = first_linear.weight.data.copy()
        head_snapshot = head.weight.data.copy()
        first_linear.freeze()
        opt = Adam(model.parameters(), lr=1e-2)
        for _ in range(10):
            loss = F.cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_array_equal(first_linear.weight.data, frozen_snapshot)
        # the unfrozen head did move
        assert not np.allclose(head.weight.data, head_snapshot)

    def test_training_is_seed_reproducible(self):
        def run():
            x, y = make_blobs(seed=5)
            model = MLP(6, hidden=(8,), num_classes=3, seed=4)
            opt = Adam(model.parameters(), lr=1e-2)
            for _ in range(15):
                loss = F.cross_entropy(model(Tensor(x)), y)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return model(Tensor(x)).data

    # identical seeds, identical results — bitwise
        np.testing.assert_array_equal(run(), run())

    def test_eval_mode_is_deterministic_with_dropout(self):
        model = small_cnn(num_classes=4, base_width=4, input_size=12, seed=0)
        from repro.nn.layers import Dropout

        model.body.append(Dropout(p=0.5, seed=0))
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 12, 12)))
        model.eval()
        with no_grad():
            a = model(x).data
            b = model(x).data
        np.testing.assert_array_equal(a, b)
