"""Cross-module integration tests: the full paper pipeline end to end."""

import numpy as np
import pytest

from repro.ckks import CkksParams
from repro.core import SmartPAF, SmartPAFConfig, pretrain
from repro.data import cifar10_like
from repro.data.synthetic import Dataset, make_pattern_dataset
from repro.fhe import compile_mlp
from repro.nn import Tensor, no_grad
from repro.nn.models import mlp, small_cnn
from repro.paf import get_paf


@pytest.mark.slow
class TestFullPipeline:
    def test_cnn_smartpaf_recovers_accuracy(self):
        """Pretrain -> replace all non-poly ops -> fine-tune -> SS deploy.

        The headline claim at small scale: the HE-deployable model stays
        within a few points of the original accuracy for a high-degree PAF.
        """
        ds = cifar10_like(n_train=600, n_val=200, image_size=16, seed=0)
        model = small_cnn(num_classes=10, base_width=8, input_size=16, seed=1)
        base_acc = pretrain(model, ds, epochs=4, seed=0)
        assert base_acc > 0.5

        runner = SmartPAF(
            lambda: get_paf("f1f1g1g1"),
            SmartPAFConfig.quick(epochs_per_group=2, max_groups_per_step=2),
        )
        result = runner.fit(model, ds)
        assert result.ds_accuracy > base_acc - 0.08
        assert result.ss_accuracy > base_acc - 0.12

    def test_low_degree_degrades_more_than_high_degree(self):
        """Tab. 3's central ordering: lower degree => lower SS accuracy,
        measured without fine-tuning so the PAF quality is isolated."""
        ds = cifar10_like(n_train=400, n_val=150, image_size=16, seed=3)
        model = small_cnn(num_classes=10, base_width=8, input_size=16, seed=2)
        pretrain(model, ds, epochs=4, seed=0)
        state = model.state_dict()
        accs = {}
        for form in ("f1f1g1g1", "f1g2"):
            m = small_cnn(num_classes=10, base_width=8, input_size=16, seed=2)
            m.load_state_dict(state)
            runner = SmartPAF(
                lambda f=form: get_paf(f),
                SmartPAFConfig.quick().with_techniques(ct=False),
            )
            _, ss = runner.replace_only(m, ds)
            accs[form] = ss
        assert accs["f1f1g1g1"] >= accs["f1g2"] - 0.02

    def test_mlp_training_to_encrypted_inference(self):
        """The complete Fig.-2 story: train, approximate, encrypt, infer."""
        img = make_pattern_dataset(3, 200, 40, image_size=4, noise=0.4, seed=1)
        x_tr = img.x_train.reshape(len(img.x_train), -1)
        x_va = img.x_val.reshape(len(img.x_val), -1)
        ds = Dataset(x_tr, img.y_train, x_va, img.y_val, 3, "flat")
        model = mlp(x_tr.shape[1], hidden=(10,), num_classes=3, seed=0)
        pretrain(model, ds, epochs=5, seed=0)
        runner = SmartPAF(
            lambda: get_paf("f1g2"),
            SmartPAFConfig.quick(epochs_per_group=1, max_groups_per_step=1),
        )
        runner.fit(model, ds)

        enc = compile_mlp(model, CkksParams(n=1024, scale_bits=25, depth=9), seed=0)
        model.eval()
        with no_grad():
            plain = model(Tensor(x_va[:4])).data.argmax(axis=1)
        enc_preds = [enc.predict(x_va[i], 3) for i in range(4)]
        agreement = sum(int(a == b) for a, b in zip(plain, enc_preds))
        assert agreement >= 3  # encrypted model tracks the plaintext model
