"""Tests for the shared experiment infrastructure."""

import numpy as np
import pytest

from repro.core import evaluate_accuracy
from repro.experiments.common import (
    PAPER_FORMS,
    default_baseline,
    fresh_model,
    is_quick,
    quick_config,
    scale_mode,
    smallcnn_cifar_baseline,
)


class TestBaselines:
    def test_smallcnn_baseline_cached(self):
        a = smallcnn_cifar_baseline(0)
        b = smallcnn_cifar_baseline(0)
        assert a is b  # lru_cache: pretraining happens once per process

    def test_fresh_model_restores_checkpoint(self):
        base = smallcnn_cifar_baseline(0)
        m1 = fresh_model(base)
        m2 = fresh_model(base)
        assert m1 is not m2
        acc1 = evaluate_accuracy(m1, base.dataset.x_val, base.dataset.y_val)
        acc2 = evaluate_accuracy(m2, base.dataset.x_val, base.dataset.y_val)
        assert acc1 == pytest.approx(acc2)
        assert acc1 == pytest.approx(base.accuracy, abs=1e-9)

    def test_fresh_models_are_independent(self):
        base = smallcnn_cifar_baseline(0)
        m1, m2 = fresh_model(base), fresh_model(base)
        p1 = next(iter(m1.parameters()))
        p1.data += 100.0
        p2 = next(iter(m2.parameters()))
        assert not np.allclose(p1.data, p2.data)

    def test_default_baseline_is_resnet(self):
        base = default_baseline(0)
        assert base.arch == "resnet18"

    def test_baseline_accuracy_above_chance(self):
        base = smallcnn_cifar_baseline(0)
        assert base.accuracy > 2.0 / base.dataset.num_classes


class TestScaleMode:
    def test_quick_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_mode() == "quick"
        assert is_quick()

    def test_full_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert scale_mode() == "full"
        assert not is_quick()

    def test_quick_config_budgets(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        cfg = quick_config()
        assert cfg.epochs_per_group <= 2
        assert cfg.max_groups_per_step <= 2

    def test_quick_config_overrides(self):
        cfg = quick_config(epochs_per_group=3, seed=7)
        assert cfg.epochs_per_group == 3
        assert cfg.seed == 7


class TestPaperForms:
    def test_all_resolvable(self):
        from repro.paf import get_paf

        for form in PAPER_FORMS:
            paf = get_paf(form)
            assert paf.mult_depth >= 5
