"""Smoke + shape tests for the experiment runners (tiny budgets).

The full regeneration runs live in benchmarks/; these tests verify the
runners' structure and the cheapest invariants.
"""


from repro.experiments import (
    PAPER_FORMS,
    PAPER_TABLE2,
    print_table2,
    run_depth_schedule,
    run_measured_depths,
    run_table2,
)
from repro.experiments.table4 import run_fig1, run_latency_table


class TestTable2:
    def test_matches_paper_exactly(self):
        got = {k: (v["degree"], v["mult_depth"]) for k, v in run_table2().items()}
        assert got == PAPER_TABLE2

    def test_print_contains_all_forms(self):
        text = print_table2()
        for form in PAPER_TABLE2:
            assert form in text


class TestAppendixDepth:
    def test_schedule_total(self):
        sched = run_depth_schedule("f1g2")
        assert max(d for _, d in sched) == 5

    def test_measured_equals_analytic(self):
        measured = run_measured_depths(n=256, include_alpha10=False)
        for form, v in measured.items():
            assert v["measured"] == v["analytic"], form


class TestLatency:
    def test_latency_table_includes_baseline(self):
        res = run_latency_table(forms=["f1g2"], repeats=1)
        assert "alpha10" in res and "f1g2" in res
        assert res["alpha10"].seconds > res["f1g2"].seconds

    def test_fig1_frontier_structure(self):
        fake_t4 = {
            "rows": {
                "f1g2": {"latency_s": 1.0, "ss_accuracy": 0.5},
                "f1f1g1g1": {"latency_s": 2.0, "ss_accuracy": 0.7},
            },
            "baseline_latency": 8.0,
            "original_accuracy": 0.72,
        }
        fig1 = run_fig1(fake_t4)
        assert len(fig1["points"]) == 3
        names = [p.name for p in fig1["frontier"]]
        assert "f1g2" in names and "f1f1g1g1" in names


class TestPaperForms:
    def test_five_forms(self):
        assert len(PAPER_FORMS) == 5
        assert PAPER_FORMS[0] == "f1f1g1g1"
