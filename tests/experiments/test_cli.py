"""Tests for the ``python -m repro.experiments`` CLI."""


from repro.experiments.__main__ import RUNNERS, main


class TestCli:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "f1^2 o g1^2" in out

    def test_depth(self, capsys):
        assert main(["depth"]) == 0
        out = capsys.readouterr().out
        assert "f1 ∘ g2 depth schedule" in out
        assert "Measured CKKS level consumption" in out

    def test_unknown_target(self, capsys):
        assert main(["nonsense"]) == 2
        assert "unknown targets" in capsys.readouterr().out

    def test_default_is_table2(self, capsys):
        assert main([]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_all_targets_registered(self):
        assert set(RUNNERS) == {
            "table2",
            "fig7",
            "fig8",
            "fig9",
            "table3",
            "table4",
            "depth",
        }
