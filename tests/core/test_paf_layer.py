"""Tests for the trainable PAF layers (PAFSign, PAFReLU, PAFMaxPool2d)."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.core.paf_layer import PAFMaxPool2d, PAFReLU, PAFSign
from repro.nn import Adam, Tensor
from repro.paf import get_paf


class TestPAFSign:
    def test_forward_matches_numpy_composite(self):
        paf = get_paf("f2g3")
        layer = PAFSign(paf)
        x = np.linspace(-1, 1, 101)
        np.testing.assert_allclose(layer(Tensor(x)).data, paf(x), rtol=1e-12)

    def test_parameters_one_per_component(self):
        layer = PAFSign(get_paf("f1f1g1g1"))
        params = layer.component_params()
        assert len(params) == 4
        assert all(p.requires_grad for p in params)

    def test_coefficient_gradients_flow(self):
        layer = PAFSign(get_paf("f1g2"))
        x = Tensor(np.linspace(-0.9, 0.9, 50))
        layer(x).sum().backward()
        for p in layer.component_params():
            assert p.grad is not None
            assert np.any(p.grad != 0)

    def test_coefficient_grad_numeric(self):
        layer = PAFSign(get_paf("f1g2"))
        x = np.linspace(-0.9, 0.9, 23)
        layer(Tensor(x)).sum().backward()
        p0 = layer.component_params()[0]
        eps = 1e-6
        analytic = p0.grad.copy()
        for i in range(p0.shape[0]):
            orig = p0.data[i]
            p0.data[i] = orig + eps
            up = float(layer(Tensor(x)).sum().data)
            p0.data[i] = orig - eps
            down = float(layer(Tensor(x)).sum().data)
            p0.data[i] = orig
            num = (up - down) / (2 * eps)
            assert analytic[i] == pytest.approx(num, rel=1e-4, abs=1e-7)

    def test_input_gradient_matches_derivative(self):
        paf = get_paf("f2g2")
        layer = PAFSign(paf)
        x0 = np.linspace(-0.8, 0.8, 11)
        xt = Tensor(x0, requires_grad=True)
        layer(xt).sum().backward()
        # chain the component derivatives as ground truth
        vals = paf.intermediate_values(x0)
        expected = np.ones_like(x0)
        for comp, v in zip(paf.components, vals[:-1]):
            expected = expected * comp.derivative(v)
        np.testing.assert_allclose(xt.grad, expected, rtol=1e-9)

    def test_to_composite_roundtrip(self):
        layer = PAFSign(get_paf("f2g3"))
        snap = layer.to_composite()
        x = np.linspace(-1, 1, 33)
        np.testing.assert_allclose(snap(x), layer(Tensor(x)).data, rtol=1e-12)
        assert snap.name == "f2 o g3"
        assert snap.reported_degree == 12

    def test_load_composite(self):
        layer = PAFSign(get_paf("f1g2"))
        other = get_paf("f1g2").with_flat_coeffs(
            get_paf("f1g2").flat_coeffs() * 1.1
        )
        layer.load_composite(other)
        x = np.linspace(-1, 1, 11)
        np.testing.assert_allclose(layer(Tensor(x)).data, other(x), rtol=1e-12)

    def test_load_composite_structure_mismatch(self):
        layer = PAFSign(get_paf("f1g2"))
        with pytest.raises(ValueError):
            layer.load_composite(get_paf("f2g3"))


class TestPAFReLU:
    def test_approximates_relu_dynamic(self):
        layer = PAFReLU(get_paf("f1f1g1g1"))
        layer.eval()
        rng = np.random.default_rng(0)
        x = rng.choice([-2.0, -0.8, 0.8, 2.0], size=(4, 3, 6, 6))
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out, np.maximum(x, 0), atol=0.1)

    def test_dynamic_scale_uses_batch_max(self):
        layer = PAFReLU(get_paf("f1f1g1g1"))
        layer.eval()  # dynamic mode still uses the batch max at eval
        x = np.array([-4.0, 4.0])
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out, [0.0, 4.0], atol=0.05)

    def test_running_max_updates_in_training_only(self):
        layer = PAFReLU(get_paf("f1g2"))
        layer.train(False)
        layer(Tensor(np.array([-7.0, 7.0])))
        assert layer.static_scale == pytest.approx(1e-6)
        layer.train(True)
        layer(Tensor(np.array([-7.0, 7.0])))
        assert layer.static_scale == pytest.approx(7.0)

    def test_calibrating_flag_updates_in_eval(self):
        layer = PAFReLU(get_paf("f1g2"))
        layer.train(False)
        layer.calibrating = True
        layer(Tensor(np.array([-3.0, 3.0])))
        assert layer.static_scale == pytest.approx(3.0)

    def test_static_mode_uses_frozen_scale(self):
        layer = PAFReLU(get_paf("f1f1g1g1"))
        layer.set_static(8.0)
        layer.eval()
        x = np.array([-4.0, 4.0])  # batch max 4, frozen scale 8: z = +/-0.5
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out, [0.0, 4.0], atol=0.05)

    def test_invalid_scale_mode(self):
        with pytest.raises(ValueError):
            PAFReLU(get_paf("f1g2"), scale_mode="magic")

    def test_trainable_against_true_relu(self):
        """Distilling the layer toward exact ReLU must reduce the MSE —
        the primitive that PAF fine-tuning rests on."""
        layer = PAFReLU(get_paf("f1g2"))
        layer.train()
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=512)
        target = np.maximum(x, 0)
        opt = Adam(layer.parameters(), lr=1e-2)

        def mse():
            diff = layer(Tensor(x)) - Tensor(target)
            return (diff * diff).mean()

        before = mse().item()
        for _ in range(60):
            loss = mse()
            opt.zero_grad()
            loss.backward()
            opt.step()
        after = mse().item()
        assert after < before * 0.7

    def test_state_dict_includes_running_max(self):
        layer = PAFReLU(get_paf("f1g2"))
        layer.train(True)
        layer(Tensor(np.array([5.0])))
        state = layer.state_dict()
        assert "buffer::running_max" in state
        fresh = PAFReLU(get_paf("f1g2"))
        fresh.load_state_dict(state)
        assert fresh.static_scale == pytest.approx(5.0)


class TestPAFMaxPool2d:
    def test_approximates_maxpool(self):
        layer = PAFMaxPool2d(get_paf("f1f1g1g1"), kernel_size=2)
        layer.eval()
        rng = np.random.default_rng(2)
        x = rng.choice([-0.9, -0.3, 0.3, 0.9], size=(2, 3, 8, 8))
        out = layer(Tensor(x)).data
        ref = np.maximum.reduce([x[:, :, i::2, j::2] for i in range(2) for j in range(2)])
        np.testing.assert_allclose(out, ref, atol=0.15)

    def test_per_round_scale_slots(self):
        layer = PAFMaxPool2d(get_paf("f1g2"), kernel_size=2)
        assert layer.num_scales == 3
        layer3 = PAFMaxPool2d(get_paf("f1g2"), kernel_size=3)
        assert layer3.num_scales == 8

    def test_round_scales_tracked_independently(self):
        layer = PAFMaxPool2d(get_paf("f1f1g1g1"), kernel_size=2)
        layer.train(True)
        rng = np.random.default_rng(3)
        layer(Tensor(rng.uniform(-1, 1, size=(2, 2, 4, 4))))
        scales = layer.static_scales()
        assert scales.shape == (3,)
        assert np.all(scales > 1e-6)

    def test_padding_and_stride_shapes(self):
        layer = PAFMaxPool2d(get_paf("f1g2"), kernel_size=3, stride=2, padding=1)
        out = layer(Tensor(np.zeros((1, 2, 8, 8))))
        assert out.shape == (1, 2, 4, 4)

    def test_gradients_reach_coefficients(self):
        layer = PAFMaxPool2d(get_paf("f1g2"), kernel_size=2)
        rng = np.random.default_rng(4)
        layer(Tensor(rng.uniform(-1, 1, (1, 1, 4, 4)))).sum().backward()
        for p in layer.sign.component_params():
            assert p.grad is not None

    def test_set_static_freezes_all_slots(self):
        layer = PAFMaxPool2d(get_paf("f1g2"), kernel_size=2)
        layer.set_static(4.0)
        assert layer.scale_mode == "static"
        np.testing.assert_allclose(layer.static_scales(), 4.0)

    def test_reset_scales(self):
        layer = PAFMaxPool2d(get_paf("f1g2"), kernel_size=2)
        layer.train(True)
        layer(Tensor(np.random.default_rng(0).uniform(-2, 2, (1, 1, 4, 4))))
        layer.reset_scales()
        np.testing.assert_allclose(layer.static_scales(), 1e-6)
