"""Tests for the appendix-B coefficient export/import."""

import json

import numpy as np
import pytest

from repro.core import pretrain, replace_all, replaced_layers
from repro.core.export import (
    export_coefficients,
    format_appendix_table,
    import_coefficients,
    load_coefficients,
    save_coefficients,
)
from repro.core.trainer import evaluate_accuracy
from repro.data import cifar10_like
from repro.nn.models import small_cnn
from repro.paf import get_paf


@pytest.fixture(scope="module")
def replaced():
    ds = cifar10_like(n_train=150, n_val=60, image_size=12, seed=0)
    model = small_cnn(num_classes=10, base_width=4, input_size=12, seed=1)
    pretrain(model, ds, epochs=1, seed=0)
    replace_all(model, get_paf("f2g2"), ds.x_train[:2])
    return model, ds


class TestExport:
    def test_document_structure(self, replaced):
        model, _ = replaced
        doc = export_coefficients(model)
        assert len(doc["layers"]) == 4
        for entry in doc["layers"].values():
            assert entry["paf_name"] == "f2 o g2"
            assert len(entry["components"]) == 2
            assert entry["kind"] in ("relu", "maxpool")
            assert len(entry["static_scales"]) >= 1

    def test_json_serialisable(self, replaced):
        model, _ = replaced
        text = json.dumps(export_coefficients(model))
        assert "f2 o g2" in text

    def test_roundtrip_restores_behaviour(self, replaced, tmp_path):
        model, ds = replaced
        # perturb after export, reload, behaviour must be restored
        path = tmp_path / "coeffs.json"
        save_coefficients(model, path)
        acc_before = evaluate_accuracy(model, ds.x_val, ds.y_val)
        for _, layer in replaced_layers(model):
            for p in layer.sign.component_params():
                p.data = p.data * 3.0
        restored = load_coefficients(model, path)
        assert len(restored) == 4
        acc_after = evaluate_accuracy(model, ds.x_val, ds.y_val)
        assert acc_after == pytest.approx(acc_before, abs=1e-9)
        # (mangled accuracy is almost surely different; no assert — seeds)

    def test_import_strict_unknown_layer(self, replaced):
        model, _ = replaced
        doc = export_coefficients(model)
        doc["layers"]["nonexistent.site"] = next(iter(doc["layers"].values()))
        with pytest.raises(KeyError):
            import_coefficients(model, doc, strict=True)
        # non-strict skips quietly
        restored = import_coefficients(model, doc, strict=False)
        assert "nonexistent.site" not in restored

    def test_import_structure_mismatch(self, replaced):
        model, _ = replaced
        doc = export_coefficients(model)
        first = next(iter(doc["layers"].values()))
        first["components"][0]["coeffs"] = [1.0]  # wrong arity
        with pytest.raises(ValueError):
            import_coefficients(model, doc, strict=True)

    def test_format_appendix_table(self, replaced):
        model, _ = replaced
        doc = export_coefficients(model)
        text = format_appendix_table(doc, component_index=0)
        assert "c1" in text and "c3" in text and "c5" in text
        assert "layer id" in text
