"""Model surgery tests: site discovery, tracing, replacement."""

import numpy as np
import pytest

from repro.core.paf_layer import PAFMaxPool2d, PAFReLU
from repro.core.surgery import (
    find_nonpoly_sites,
    nonpoly_graph,
    replace_all,
    replace_site,
    replaced_layers,
    trace_nonpoly_order,
)
from repro.nn import MaxPool2d, ReLU, Sequential, Tensor
from repro.nn.models import resnet18, small_cnn, vgg19
from repro.paf import get_paf

SAMPLE = np.zeros((1, 3, 32, 32))


class TestFindSites:
    def test_resnet18_site_count(self):
        model = resnet18(base_width=4, seed=0)
        sites = find_nonpoly_sites(model, SAMPLE)
        assert len(sites) == 18  # 17 ReLU + 1 MaxPool
        assert sum(s.kind == "maxpool" for s in sites) == 1

    def test_vgg19_site_count(self):
        model = vgg19(base_width=2, input_size=32, seed=0)
        sites = find_nonpoly_sites(model, SAMPLE)
        assert len(sites) == 23  # 18 ReLU + 5 MaxPool
        assert sum(s.kind == "maxpool" for s in sites) == 5

    def test_relu_only_filter(self):
        model = resnet18(base_width=4, seed=0)
        sites = find_nonpoly_sites(model, SAMPLE, kinds=("relu",))
        assert len(sites) == 17
        assert all(s.kind == "relu" for s in sites)

    def test_orders_are_sequential(self):
        model = small_cnn(seed=0)
        sites = find_nonpoly_sites(model, np.zeros((1, 3, 16, 16)))
        assert [s.order for s in sites] == list(range(len(sites)))

    def test_traced_order_matches_inference(self):
        """In ResNet-18 the stem ReLU and MaxPool run before any block."""
        model = resnet18(base_width=4, seed=0)
        sites = find_nonpoly_sites(model, SAMPLE)
        names = [s.name for s in sites]
        assert names[0] == "relu"
        assert names[1] == "maxpool"
        assert names[2].startswith("layer1.0")
        # layer4 sites come last
        assert names[-1].startswith("layer4.1")

    def test_definition_order_equals_traced_order(self):
        """Our models define modules in inference order; both discovery
        modes must agree (documented assumption)."""
        for model, sample in [
            (resnet18(base_width=4, seed=0), SAMPLE),
            (vgg19(base_width=2, input_size=32, seed=0), SAMPLE),
            (small_cnn(seed=0), np.zeros((1, 3, 16, 16))),
        ]:
            traced = [s.name for s in find_nonpoly_sites(model, sample)]
            defined = [s.name for s in find_nonpoly_sites(model)]
            assert traced == defined

    def test_trace_restores_modules(self):
        model = small_cnn(seed=0)
        before = dict(model.named_modules())
        trace_nonpoly_order(model, np.zeros((1, 3, 16, 16)))
        after = dict(model.named_modules())
        assert set(before) == set(after)
        assert all(before[k] is after[k] for k in before)

    def test_trace_detects_unexecuted_site(self):
        class Broken(Sequential):
            def forward(self, x):
                return self[0](x)  # skips the ReLU at index 1

        from repro.nn import Linear

        model = Broken(Linear(4, 4), ReLU())
        with pytest.raises(RuntimeError):
            trace_nonpoly_order(model, np.zeros((1, 4)))


class TestReplace:
    def test_replace_site_relu(self):
        model = small_cnn(seed=0)
        sites = find_nonpoly_sites(model, np.zeros((1, 3, 16, 16)))
        new = replace_site(sites[0], get_paf("f1g2"))
        assert isinstance(new, PAFReLU)
        assert sites[0].module is new

    def test_replace_site_maxpool_preserves_geometry(self):
        model = resnet18(base_width=4, seed=0)
        sites = find_nonpoly_sites(model, SAMPLE)
        mp_site = next(s for s in sites if s.kind == "maxpool")
        old = mp_site.module
        new = replace_site(mp_site, get_paf("f1g2"))
        assert isinstance(new, PAFMaxPool2d)
        assert new.kernel_size == old.kernel_size
        assert new.stride == old.stride
        assert new.padding == old.padding

    def test_replace_twice_raises(self):
        model = small_cnn(seed=0)
        sites = find_nonpoly_sites(model, np.zeros((1, 3, 16, 16)))
        replace_site(sites[0], get_paf("f1g2"))
        with pytest.raises(TypeError):
            replace_site(sites[0], get_paf("f1g2"))

    def test_replace_all(self):
        model = resnet18(base_width=4, seed=0)
        new_layers = replace_all(model, get_paf("f1g2"), SAMPLE)
        assert len(new_layers) == 18
        assert len(replaced_layers(model)) == 18
        # no exact non-polynomial ops remain
        remaining = find_nonpoly_sites(model)
        assert remaining == []

    def test_replaced_model_still_runs(self):
        model = small_cnn(num_classes=4, seed=0)
        replace_all(model, get_paf("f1f1g1g1"), np.zeros((1, 3, 16, 16)))
        model.eval()
        out = model(Tensor(np.random.default_rng(0).normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 4)
        assert np.isfinite(out.data).all()

    def test_each_site_gets_independent_coefficients(self):
        """CT/fine-tuning are per-layer: sites must not share Parameters."""
        model = small_cnn(seed=0)
        replace_all(model, get_paf("f1g2"), np.zeros((1, 3, 16, 16)))
        layers = [m for _, m in replaced_layers(model)]
        p0 = layers[0].sign.component_params()[0]
        p1 = layers[1].sign.component_params()[0]
        assert p0 is not p1
        p0.data[0] += 1.0
        assert p1.data[0] != p0.data[0]

    def test_replace_preserves_training_mode(self):
        model = small_cnn(seed=0)
        model.eval()
        sites = find_nonpoly_sites(model, np.zeros((1, 3, 16, 16)))
        new = replace_site(sites[0], get_paf("f1g2"))
        assert new.training is False


class TestGraph:
    def test_chain_graph(self):
        model = small_cnn(seed=0)
        g = nonpoly_graph(model, np.zeros((1, 3, 16, 16)))
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        import networkx as nx

        order = list(nx.topological_sort(g))
        assert order == [0, 1, 2, 3]

    def test_node_attributes(self):
        model = small_cnn(seed=0)
        g = nonpoly_graph(model, np.zeros((1, 3, 16, 16)))
        kinds = [g.nodes[n]["kind"] for n in sorted(g.nodes)]
        assert kinds.count("maxpool") == 1
