"""Tests for CT, scaling, trainer split, config and the scheduler."""

import numpy as np
import pytest

from repro.core import (
    SmartPAF,
    SmartPAFConfig,
    SmartPAFScheduler,
    calibrate_static_scales,
    capture_site_inputs,
    coefficient_tune_site,
    convert_to_dynamic,
    convert_to_static,
    find_nonpoly_sites,
    make_optimizer,
    pretrain,
    replace_all,
    replaced_layers,
    scale_summary,
    set_trainable,
    split_parameters,
    tune_paf_for_site,
)
from repro.data import cifar10_like
from repro.nn.models import small_cnn
from repro.paf import get_paf
from repro.paf.fitting import weighted_sign_mse


@pytest.fixture(scope="module")
def setup():
    ds = cifar10_like(n_train=300, n_val=100, image_size=16, seed=0)
    model = small_cnn(num_classes=10, base_width=4, input_size=16, seed=1)
    acc = pretrain(model, ds, epochs=2, seed=0)
    return model.state_dict(), ds, acc


def fresh(setup):
    state, ds, acc = setup
    m = small_cnn(num_classes=10, base_width=4, input_size=16, seed=1)
    m.load_state_dict(state)
    return m, ds, acc


class TestCoefficientTuning:
    def test_capture_site_inputs(self, setup):
        model, ds, _ = fresh(setup)
        sites = find_nonpoly_sites(model, ds.x_train[:2])
        samples = capture_site_inputs(model, sites[0], [ds.x_train[:32]])
        assert samples.size > 0
        assert np.isfinite(samples).all()
        # model restored after capture
        assert sites[0].module is getattr(sites[0].parent, sites[0].attr)

    def test_capture_empty_batches_raises(self, setup):
        model, ds, _ = fresh(setup)
        sites = find_nonpoly_sites(model, ds.x_train[:2])
        with pytest.raises(RuntimeError):
            capture_site_inputs(model, sites[0], [])

    def test_tuned_paf_reduces_weighted_error(self, setup):
        model, ds, _ = fresh(setup)
        sites = find_nonpoly_sites(model, ds.x_train[:2])
        samples = capture_site_inputs(model, sites[0], [ds.x_train[:64]])
        paf = get_paf("f1f1g1g1")
        tuned = tune_paf_for_site(paf, samples, kind="relu")
        # evaluate both on the actual normalised profile
        z = samples / np.abs(samples).max()
        w = z * z  # ReLU-residual weighting
        assert weighted_sign_mse(tuned, z, w) <= weighted_sign_mse(paf, z, w) + 1e-9

    def test_tuned_paf_stays_bounded(self, setup):
        """The guardrails: tuning must not create an exploding composite."""
        model, ds, _ = fresh(setup)
        sites = find_nonpoly_sites(model, ds.x_train[:2])
        samples = capture_site_inputs(model, sites[0], [ds.x_train[:64]])
        for form in ["f1g2", "f2g2", "f1f1g1g1"]:
            base = get_paf(form)
            tuned = tune_paf_for_site(base, samples, kind="relu")
            check = np.linspace(-1.25, 1.25, 301)
            assert (
                np.max(np.abs(tuned(check)))
                <= max(4.0, 2.0 * np.max(np.abs(base(check)))) + 1e-6
            )

    def test_maxpool_kind_profiles_differences(self, setup):
        model, ds, _ = fresh(setup)
        sites = find_nonpoly_sites(model, ds.x_train[:2])
        mp = next(s for s in sites if s.kind == "maxpool")
        tuned = coefficient_tune_site(
            model, mp, get_paf("f2g2"), [ds.x_train[:32]]
        )
        assert np.isfinite(tuned.flat_coeffs()).all()


class TestScaling:
    def test_calibrate_and_convert(self, setup):
        model, ds, _ = fresh(setup)
        replace_all(model, get_paf("f1f1g1g1"), ds.x_train[:2])
        calibrate_static_scales(model, [ds.x_train[:64], ds.x_train[64:128]])
        scales = convert_to_static(model)
        assert len(scales) == 4
        assert all(s > 1e-6 for _, s in scales)
        summary = scale_summary(model)
        assert all(v["mode"] == "static" for v in summary.values())
        convert_to_dynamic(model)
        assert all(
            v["mode"] == "dynamic" for v in scale_summary(model).values()
        )

    def test_ss_accuracy_close_to_ds_for_high_degree(self, setup):
        model, ds, base_acc = fresh(setup)
        runner = SmartPAF(lambda: get_paf("f1f1g1g1"), SmartPAFConfig.quick())
        ds_acc, ss_acc = runner.replace_only(model, ds)
        assert ss_acc >= ds_acc - 0.15  # high-degree PAF survives SS


class TestTrainerSplit:
    def test_split_parameters(self, setup):
        model, ds, _ = fresh(setup)
        replace_all(model, get_paf("f1g2"), ds.x_train[:2])
        paf_params, other_params = split_parameters(model)
        assert len(paf_params) == 4 * 2  # 4 sites x 2 components
        assert len(other_params) > 0
        ids = {id(p) for p in paf_params}
        assert not ids & {id(p) for p in other_params}

    def test_set_trainable_modes(self, setup):
        model, ds, _ = fresh(setup)
        replace_all(model, get_paf("f1g2"), ds.x_train[:2])
        paf_params, other_params = split_parameters(model)
        set_trainable(model, "paf")
        assert all(p.requires_grad for p in paf_params)
        assert not any(p.requires_grad for p in other_params)
        set_trainable(model, "other")
        assert not any(p.requires_grad for p in paf_params)
        assert all(p.requires_grad for p in other_params)
        set_trainable(model, "all")
        assert all(p.requires_grad for p in paf_params + other_params)
        with pytest.raises(ValueError):
            set_trainable(model, "nothing")

    def test_optimizer_uses_table5_groups(self, setup):
        model, ds, _ = fresh(setup)
        replace_all(model, get_paf("f1g2"), ds.x_train[:2])
        cfg = SmartPAFConfig()
        opt = make_optimizer(model, cfg)
        assert len(opt.groups) == 2
        assert opt.groups[0]["lr"] == pytest.approx(1e-4)     # PAF
        assert opt.groups[0]["weight_decay"] == pytest.approx(0.01)
        assert opt.groups[1]["lr"] == pytest.approx(1e-5)     # others
        assert opt.groups[1]["weight_decay"] == pytest.approx(0.1)


class TestConfig:
    def test_paper_defaults_match_table5(self):
        cfg = SmartPAFConfig.paper()
        assert cfg.optimizer == "adam"
        assert cfg.lr_paf == 1e-4
        assert cfg.lr_other == 1e-5
        assert cfg.weight_decay_paf == 0.01
        assert cfg.weight_decay_other == 0.1
        assert cfg.batchnorm_tracking is False
        assert cfg.dropout_initial is False
        assert cfg.epochs_per_group == 20
        assert cfg.overfit_margin == pytest.approx(0.10)

    def test_with_techniques(self):
        cfg = SmartPAFConfig().with_techniques(ct=False, pa=False, at=True)
        assert not cfg.coefficient_tuning
        assert not cfg.progressive
        assert cfg.alternate_training

    def test_label(self):
        assert SmartPAFConfig().label() == "baseline + CT + PA + AT + DS"
        none = SmartPAFConfig().with_techniques(ct=False, pa=False, at=False)
        assert none.label() == "baseline + DS"


class TestSchedulerAndPipeline:
    def test_progressive_schedule_covers_all_sites(self, setup):
        model, ds, _ = fresh(setup)
        cfg = SmartPAFConfig.quick(epochs_per_group=1, max_groups_per_step=1)
        sched = SmartPAFScheduler(model, ds, lambda: get_paf("f1g2"), cfg)
        result = sched.run()
        assert len(result.steps) == 4
        assert len(replaced_layers(model)) == 4
        replaces = [e for _, e in result.events if e.startswith("replace:")]
        assert len(replaces) == 4

    def test_direct_schedule_single_step(self, setup):
        model, ds, _ = fresh(setup)
        cfg = SmartPAFConfig.quick(epochs_per_group=1).with_techniques(pa=False)
        sched = SmartPAFScheduler(model, ds, lambda: get_paf("f1g2"), cfg)
        result = sched.run()
        assert len(result.steps) == 1
        assert result.steps[0]["step"] == "all"

    def test_history_records_epochs(self, setup):
        model, ds, _ = fresh(setup)
        cfg = SmartPAFConfig.quick(epochs_per_group=2, max_groups_per_step=1)
        sched = SmartPAFScheduler(model, ds, lambda: get_paf("f1f1g1g1"), cfg)
        result = sched.run()
        assert len(result.curve) >= 8  # >= 2 epochs x 4 steps
        assert all(0.0 <= v <= 1.0 for v in result.curve)

    def test_fit_returns_ds_and_ss(self, setup):
        model, ds, base_acc = fresh(setup)
        runner = SmartPAF(
            lambda: get_paf("f1f1g1g1"),
            SmartPAFConfig.quick(epochs_per_group=1, max_groups_per_step=1),
        )
        result = runner.fit(model, ds)
        assert 0.0 <= result.ss_accuracy <= 1.0
        assert result.ds_accuracy >= base_acc - 0.15
        assert result.paf_name == "f1^2 o g1^2"
        assert len(result.static_scales) == 4
        coeffs = result.coefficients_by_layer()
        assert len(coeffs) == 4

    def test_relu_only_kinds(self, setup):
        model, ds, _ = fresh(setup)
        runner = SmartPAF(
            lambda: get_paf("f1g2"),
            SmartPAFConfig.quick(epochs_per_group=1, max_groups_per_step=1),
            kinds=("relu",),
        )
        result = runner.fit(model, ds)
        assert len(result.static_scales) == 3  # 3 ReLUs, MaxPool untouched
        remaining = find_nonpoly_sites(result.model)
        assert [s.kind for s in remaining] == ["maxpool"]
