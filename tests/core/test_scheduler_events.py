"""Scheduler branch coverage: AT swaps, dropout-on-overfit, group loops."""

import numpy as np
import pytest

from repro.core import SmartPAFConfig, SmartPAFScheduler, pretrain
from repro.core.scheduler import ScheduleResult, run_training_group
from repro.core.trainer import make_optimizer, set_trainable
from repro.data import DataLoader
from repro.data.synthetic import make_pattern_dataset
from repro.nn.layers import Dropout
from repro.nn.models import small_cnn
from repro.paf import get_paf


@pytest.fixture(scope="module")
def tiny():
    # deliberately tiny train split: easy to overfit, fast to train
    ds = make_pattern_dataset(4, 80, 60, image_size=12, noise=0.8, seed=0)
    model = small_cnn(num_classes=4, base_width=4, input_size=12, seed=1)
    pretrain(model, ds, epochs=2, seed=0)
    return model.state_dict(), ds


def fresh(tiny):
    state, ds = tiny
    m = small_cnn(num_classes=4, base_width=4, input_size=12, seed=1)
    m.load_state_dict(state)
    return m, ds


class TestTrainingGroup:
    def test_group_returns_best_state(self, tiny):
        model, ds = fresh(tiny)
        cfg = SmartPAFConfig.quick(epochs_per_group=2)
        set_trainable(model, "all")
        opt = make_optimizer(model, cfg)
        loader = DataLoader(ds.x_train, ds.y_train, batch_size=32, seed=0)
        result = ScheduleResult()
        state, acc, train_acc = run_training_group(
            model, loader, ds, opt, cfg, result, group_label="g"
        )
        assert 0.0 <= acc <= 1.0
        assert len(result.history) == 2
        assert result.history[0].event == "g"
        assert any(label == "SWA" for _, label in result.events)

    def test_group_without_swa(self, tiny):
        model, ds = fresh(tiny)
        cfg = SmartPAFConfig.quick(epochs_per_group=1, use_swa=False)
        set_trainable(model, "all")
        opt = make_optimizer(model, cfg)
        loader = DataLoader(ds.x_train, ds.y_train, batch_size=32, seed=0)
        result = ScheduleResult()
        run_training_group(model, loader, ds, opt, cfg, result)
        assert not any(label == "SWA" for _, label in result.events)


class TestSchedulerBranches:
    def test_at_event_fires_when_armed(self, tiny):
        """With multiple groups allowed and AT on, an improving first group
        arms AT; a subsequent non-improving group must swap the target."""
        model, ds = fresh(tiny)
        cfg = SmartPAFConfig.quick(
            epochs_per_group=1, max_groups_per_step=4
        ).with_techniques(ct=False, pa=True, at=True)
        sched = SmartPAFScheduler(model, ds, lambda: get_paf("f1f1g1g1"), cfg)
        result = sched.run()
        # AT may or may not fire per-step depending on accuracy dynamics;
        # over 4 sites x 4 groups it fires with near-certainty — and when
        # it does the event label records the new target.
        at_events = [label for _, label in result.events if label.startswith("AT:")]
        for label in at_events:
            assert label.split(":")[1] in ("paf", "other")

    def test_dropout_enabled_on_overfit(self, tiny):
        """Force the overfit branch: margin 0 means any train>val gap
        triggers Dropout if a Dropout layer exists."""
        model, ds = fresh(tiny)
        # give the model a dropout layer the scheduler can enable

        model.body.append(Dropout(p=0.0, seed=0))
        import dataclasses

        cfg = dataclasses.replace(
            SmartPAFConfig.quick(epochs_per_group=2, max_groups_per_step=3),
            overfit_margin=-1.0,  # always "overfitting"
            dropout_p=0.25,
        )
        sched = SmartPAFScheduler(model, ds, lambda: get_paf("f1f1g1g1"), cfg)
        result = sched.run()
        dropout_layers = [m for m in model.modules() if isinstance(m, Dropout)]
        fired = [label for _, label in result.events if label == "dropout"]
        if fired:  # branch taken => p was raised
            assert any(d.p == 0.25 for d in dropout_layers)
        # the guard: at most one dropout event per step (p only rises once)
        assert len(fired) <= len(result.steps)

    def test_max_groups_cap_respected(self, tiny):
        model, ds = fresh(tiny)
        cfg = SmartPAFConfig.quick(epochs_per_group=1, max_groups_per_step=2)
        sched = SmartPAFScheduler(model, ds, lambda: get_paf("f1g2"), cfg)
        result = sched.run()
        assert all(s["groups"] <= 2 for s in result.steps)

    def test_curve_monotone_epochs(self, tiny):
        model, ds = fresh(tiny)
        cfg = SmartPAFConfig.quick(epochs_per_group=1, max_groups_per_step=1)
        sched = SmartPAFScheduler(model, ds, lambda: get_paf("f2g2"), cfg)
        result = sched.run()
        epochs = [r.epoch for r in result.history]
        assert epochs == sorted(epochs)
        assert epochs == list(range(len(epochs)))
