"""Tests for the PAF registry (Tab. 2 forms and aliases)."""

import numpy as np
import pytest

from repro.paf import PAF_REGISTRY, canonical_key, get_paf, paper_pafs


class TestRegistry:
    def test_all_six_forms_present(self):
        assert set(PAF_REGISTRY) == {
            "alpha10",
            "f1f1g1g1",
            "alpha7",
            "f2g3",
            "f2g2",
            "f1g2",
        }

    @pytest.mark.parametrize(
        "alias,key",
        [
            ("alpha=7", "alpha7"),
            ("f2 o g3", "f2g3"),
            ("f1^2 o g1^2", "f1f1g1g1"),
            ("F2G2", "f2g2"),
            ("alpha=10", "alpha10"),
            ("minimax27", "alpha10"),
        ],
    )
    def test_aliases(self, alias, key):
        assert canonical_key(alias) == key

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_paf("f9g9")

    def test_get_paf_returns_fresh_copies(self):
        a = get_paf("f2g2")
        b = get_paf("f2g2")
        assert a is not b
        np.testing.assert_allclose(a.flat_coeffs(), b.flat_coeffs())

    def test_paper_pafs_order(self):
        names = [p.name for p in paper_pafs()]
        assert names == ["f1^2 o g1^2", "alpha=7", "f2 o g3", "f2 o g2", "f1 o g2"]
        with_a10 = [p.name for p in paper_pafs(include_alpha10=True)]
        assert with_a10[0] == "alpha=10"

    def test_g_runs_before_f(self):
        """Standard composition order: accelerating g first, sharpening f last."""
        paf = get_paf("f2g3")
        assert paf.components[0].name == "g3"
        assert paf.components[1].name == "f2"

    def test_accuracy_band_widens_with_degree(self):
        """Higher-degree forms classify smaller |x| correctly — the reason
        low-degree PAFs lose accuracy and SMART-PAF recovers it."""

        def band_lo(paf, tol=2**-4):
            x = np.linspace(1e-3, 1, 20000)
            ok = x[np.abs(paf(x) - 1) <= tol]
            return ok.min() if ok.size else np.inf

        lo_f1f1g1g1 = band_lo(get_paf("f1f1g1g1"))
        lo_f2g2 = band_lo(get_paf("f2g2"))
        lo_f1g2 = band_lo(get_paf("f1g2"))
        assert lo_f1f1g1g1 < lo_f2g2 < lo_f1g2
