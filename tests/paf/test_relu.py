"""Tests for the sign→ReLU / sign→Max construction and PAF max pooling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paf import get_paf
from repro.paf.relu import (
    maxpool_mult_depth,
    paf_max,
    paf_maxpool2d,
    paf_relu,
    relu_mult_depth,
)


@pytest.fixture(scope="module")
def paf():
    return get_paf("f1f1g1g1")


class TestPafRelu:
    def test_matches_relu_away_from_zero(self, paf):
        x = np.concatenate([np.linspace(-1, -0.2, 50), np.linspace(0.2, 1, 50)])
        np.testing.assert_allclose(paf_relu(x, paf), np.maximum(x, 0), atol=2e-2)

    def test_exact_identity_with_true_sign(self):
        """(x + sign(x)*x)/2 == ReLU(x) exactly — validates the formula."""

        class TrueSign:
            def __call__(self, x):
                return np.sign(x)

        x = np.linspace(-2, 2, 101)
        out = 0.5 * (x + TrueSign()(x) * x)
        np.testing.assert_allclose(out, np.maximum(x, 0), atol=0)

    def test_scale_folding(self, paf):
        """ReLU(x) = s * ReLU(x/s): a scale covering the range keeps accuracy."""
        x = np.linspace(-8, 8, 201)
        out = paf_relu(x, paf, scale=8.0)
        mask = np.abs(x) > 1.6  # outside the PAF's inaccurate band after scaling
        np.testing.assert_allclose(out[mask], np.maximum(x, 0)[mask], atol=0.15)

    def test_error_blows_up_without_scale(self, paf):
        """Feeding |x| >> 1 without scaling must produce garbage — this is
        the overflow failure mode DS/SS exist to prevent."""
        x = np.array([5.0])
        err = abs(float(paf_relu(x, paf)[0]) - 5.0)
        assert err > 1.0

    def test_relu_depth(self, paf):
        assert relu_mult_depth(paf) == paf.mult_depth + 1


class TestPafMax:
    def test_matches_max_for_separated_pairs(self, paf):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, 500)
        y = rng.uniform(-1, 1, 500)
        sep = np.abs(x - y) / 2.0 > 0.2  # PAF accurate band on the difference
        out = paf_max(x, y, paf, scale=2.0)
        np.testing.assert_allclose(out[sep], np.maximum(x, y)[sep], atol=5e-2)

    def test_symmetry(self, paf):
        x = np.array([0.7, -0.3, 0.1])
        y = np.array([-0.5, 0.4, 0.9])
        np.testing.assert_allclose(
            paf_max(x, y, paf, scale=2.0), paf_max(y, x, paf, scale=2.0), atol=1e-12
        )

    @given(st.floats(min_value=-0.9, max_value=0.9), st.floats(min_value=-0.9, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_bounded_between_min_and_max_when_separated(self, a, b):
        paf = get_paf("f1f1g1g1")
        if abs(a - b) < 0.5:
            return
        out = float(paf_max(np.array([a]), np.array([b]), paf, scale=2.0)[0])
        assert min(a, b) - 0.1 <= out <= max(a, b) + 0.1


class TestPafMaxPool:
    def test_matches_maxpool_on_separated_windows(self, paf):
        rng = np.random.default_rng(2)
        x = rng.choice([-0.9, -0.3, 0.3, 0.9], size=(2, 3, 8, 8))
        out = paf_maxpool2d(x, paf, kernel=2, scale=2.0)
        ref = np.maximum.reduce(
            [x[:, :, i::2, j::2] for i in range(2) for j in range(2)]
        )
        assert out.shape == ref.shape
        # tournament accumulates error; ties (equal lanes) are fine since
        # max(a,a) = a exactly under the formula
        np.testing.assert_allclose(out, ref, atol=0.12)

    def test_stride_and_shapes(self, paf):
        x = np.zeros((1, 1, 9, 9))
        out = paf_maxpool2d(x, paf, kernel=3, stride=2, scale=1.0)
        assert out.shape == (1, 1, 4, 4)

    def test_tie_is_exact(self, paf):
        """max(a, a) = ((a+a) + 0*s(0))/2 = a exactly, any PAF."""
        x = np.full((1, 1, 4, 4), 0.37)
        out = paf_maxpool2d(x, paf, kernel=2, scale=1.0)
        np.testing.assert_allclose(out, 0.37, atol=1e-12)

    def test_maxpool_depth(self, paf):
        # 2x2 window -> 3 pairwise maxes, each depth(sign)+1
        assert maxpool_mult_depth(paf, kernel=2) == 3 * (paf.mult_depth + 1)
        assert maxpool_mult_depth(paf, kernel=3) == 8 * (paf.mult_depth + 1)

    def test_maxpool_more_sensitive_than_relu(self):
        """Sec 5.4.3: nested PAF calls accumulate error — the max-pool error
        exceeds the single-call ReLU error for the same PAF."""
        paf = get_paf("f1g2")
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(4, 4, 8, 8))
        relu_err = np.mean(np.abs(paf_relu(x, paf, scale=1.0) - np.maximum(x, 0)))
        pool = paf_maxpool2d(x, paf, kernel=2, scale=2.0)
        ref = np.maximum.reduce(
            [x[:, :, i::2, j::2] for i in range(2) for j in range(2)]
        )
        pool_err = np.mean(np.abs(pool - ref))
        assert pool_err > relu_err
