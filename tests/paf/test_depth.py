"""Tests for the multiplication-depth analysis (Tab. 2, Tab. 8, Fig. 10)."""


from repro.paf import get_paf, paper_pafs
from repro.paf.depth import composite_depth_schedule, depth_schedule, paf_depth_table
from repro.paf.polynomial import OddPolynomial


class TestDepthSchedule:
    def test_f1_schedule_matches_fig10(self):
        """Fig. 10: c3*x (1), x^2 (1), c3*x^3 at depth 2 -> f1 depth 2."""
        f1 = OddPolynomial([1.5, -0.5], name="f1")
        steps = depth_schedule(f1)
        by_expr = {s.expr: s.depth for s in steps}
        assert by_expr["x^2"] == 1
        assert by_expr["c1*x"] == 1
        assert by_expr["c3*x^3"] == 2
        assert by_expr["f1(x)"] == 2

    def test_g2_schedule(self):
        """Degree-5 (Tab. 8): ladder x^2(1), x^4(2); the x^5 term is
        (c5*x) * x^4, available only once x^4 is (depth 2), so it lands at
        depth 3 = ceil(log2(5+1))."""
        g2 = OddPolynomial([3.26, -5.96, 3.71], name="g2")
        steps = depth_schedule(g2)
        by_expr = {s.expr: s.depth for s in steps}
        assert by_expr["x^2"] == 1
        assert by_expr["x^4"] == 2
        assert by_expr["c5*x^5"] == 3
        assert by_expr["g2(x)"] == 3

    def test_term_depth_equals_formula(self):
        """Every term c_k x^k lands at exactly ceil(log2(k+1)) — including
        awkward exponents like 11 where the naive ladder fold loses a level."""
        import math
        import re

        p = OddPolynomial([1.0] * 16)  # degree 31
        steps = depth_schedule(p)
        seen = 0
        for s in steps:
            m = re.fullmatch(r"c(\d+)\*x\^?(\d*)", s.expr)
            if m:
                k = int(m.group(1))
                assert s.depth == math.ceil(math.log2(k + 1)), s
                seen += 1
        assert seen == 16

    def test_composite_schedule_f1g2_total_depth5(self):
        """Tab. 8: f1 ∘ g2 consumes 5 levels total."""
        paf = get_paf("f1g2")
        steps = composite_depth_schedule(paf)
        assert max(s.depth for s in steps) == 5
        assert paf.mult_depth == 5


class TestTable2:
    """The Tab. 2 reproduction: degree and depth of all six forms."""

    EXPECTED = {
        "alpha=10": (27, 10),
        "f1^2 o g1^2": (14, 8),
        "alpha=7": (12, 6),
        "f2 o g3": (12, 6),
        "f2 o g2": (10, 6),
        "f1 o g2": (5, 5),
    }

    def test_all_forms_match_paper(self):
        rows = paf_depth_table(paper_pafs(include_alpha10=True))
        got = {r.name: (r.reported_degree, r.mult_depth) for r in rows}
        assert got == self.EXPECTED

    def test_depth_ordering_drives_latency_ordering(self):
        """Lower-degree forms must have <= depth — the premise of Fig. 1."""
        rows = paf_depth_table(paper_pafs(include_alpha10=True))
        depths = [r.mult_depth for r in rows]
        assert depths == sorted(depths, reverse=True)
