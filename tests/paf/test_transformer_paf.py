"""Differentials for the transformer-tier PAFs against exact operators.

Hypothesis drives random evaluation points / score matrices through the
large-interval ``exp`` (range reduction), the dense GELU, the rsqrt and
the Newton reciprocal, comparing each against its exact counterpart in
``repro.nn.functional`` (or numpy) over the PAF's *declared* interval —
the domain contract that :func:`repro.fhe.ir.propagate_intervals`
enforces at compile time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.paf.transformer import (
    affine_recip_init,
    exp_paf,
    gelu_paf,
    gelu_reference,
    newton_recip,
    paf_layer_norm,
    paf_softmax,
    rsqrt_paf,
)

# (constructor arguments, relative/absolute tolerance) pairs pinning the
# accuracy each configuration is expected to reach on its interval
EXP_CONFIGS = [
    (dict(interval=(-4.0, 2.0), degree=3, squarings=2), 2e-2),
    (dict(interval=(-5.0, 3.0), degree=5, squarings=3), 2e-5),
]
GELU_CONFIGS = [
    (dict(interval=(-4.0, 4.0), degree=8), 2e-2),
    (dict(interval=(-6.0, 6.0), degree=12), 2e-2),
]


def _points(interval, n=64):
    lo, hi = interval
    return st.lists(
        st.floats(min_value=lo, max_value=hi, allow_nan=False), min_size=1, max_size=n
    ).map(np.asarray)


class TestExpPAF:
    @pytest.mark.parametrize("cfg, tol", EXP_CONFIGS)
    def test_relative_error_over_declared_interval(self, cfg, tol):
        e = exp_paf(**cfg)
        grid = np.linspace(*cfg["interval"], 4001)
        rel = np.abs(e(grid) - np.exp(grid)) / np.exp(grid)
        assert np.max(rel) < tol

    @given(xs=_points((-4.0, 2.0)))
    @settings(max_examples=50, deadline=None)
    def test_random_points_match_exp(self, xs):
        e = exp_paf((-4.0, 2.0), degree=3, squarings=2)
        np.testing.assert_allclose(e(xs), np.exp(xs), rtol=2e-2, atol=1e-3)

    def test_range_reduction_beats_direct_fit(self):
        # the Chiang-style shrink-then-square construction is the point:
        # same degree with no squarings is far worse on the same interval
        direct = exp_paf((-4.0, 2.0), degree=3, squarings=0)
        reduced = exp_paf((-4.0, 2.0), degree=3, squarings=2)
        grid = np.linspace(-4.0, 2.0, 2001)
        err = lambda f: np.max(np.abs(f(grid) - np.exp(grid)) / np.exp(grid))
        assert err(reduced) < err(direct) / 10

    def test_mult_depth_counts_squarings(self):
        e = exp_paf((-4.0, 2.0), degree=3, squarings=2)
        assert e.mult_depth == e.poly.mult_depth + 2


class TestGeluPAF:
    @pytest.mark.parametrize("cfg, tol", GELU_CONFIGS)
    def test_absolute_error_over_declared_interval(self, cfg, tol):
        p = gelu_paf(**cfg)
        grid = np.linspace(*cfg["interval"], 4001)
        assert np.max(np.abs(p(grid) - gelu_reference(grid))) < tol

    @given(xs=_points((-4.0, 4.0)))
    @settings(max_examples=50, deadline=None)
    def test_random_points_match_functional_gelu(self, xs):
        p = gelu_paf((-4.0, 4.0), degree=8)
        want = F.gelu(Tensor(xs)).data
        np.testing.assert_allclose(p(xs), want, atol=2e-2)

    def test_reference_is_functional_gelu(self):
        # the PAF fits the exact formula the plaintext model computes —
        # any drift here would silently bias every differential
        xs = np.linspace(-6.0, 6.0, 101)
        np.testing.assert_allclose(
            gelu_reference(xs), F.gelu(Tensor(xs)).data, rtol=1e-12
        )


class TestRsqrtPAF:
    def test_relative_error_over_declared_interval(self):
        p = rsqrt_paf((0.25, 4.0), degree=6)
        grid = np.linspace(0.25, 4.0, 4001)
        rel = np.abs(p(grid) - 1.0 / np.sqrt(grid)) * np.sqrt(grid)
        assert np.max(rel) < 2e-2

    @given(xs=_points((0.25, 4.0)))
    @settings(max_examples=50, deadline=None)
    def test_random_points_match_rsqrt(self, xs):
        p = rsqrt_paf((0.25, 4.0), degree=6)
        np.testing.assert_allclose(p(xs), 1.0 / np.sqrt(xs), rtol=3e-2)


class TestNewtonRecip:
    @given(
        s=st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
        iters=st.integers(min_value=5, max_value=7),
    )
    @settings(max_examples=50, deadline=None)
    def test_converges_on_seed_interval(self, s, iters):
        # the affine seed's relative error squares each iteration; five
        # iterations cover this 16x-ratio interval to < 1e-3
        init = affine_recip_init((0.5, 8.0))
        y = newton_recip(np.asarray([s]), init, iters)[0]
        assert abs(y * s - 1.0) < 1e-3

    def test_each_iteration_contracts(self):
        init = affine_recip_init((0.5, 8.0))
        s = np.linspace(0.5, 8.0, 501)
        errs = [
            np.max(np.abs(newton_recip(s, init, it) * s - 1.0))
            for it in range(1, 5)
        ]
        assert all(b < a for a, b in zip(errs, errs[1:]))


class TestPafSoftmax:
    @given(
        scores=st.lists(
            st.lists(
                st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
                min_size=4,
                max_size=4,
            ),
            min_size=1,
            max_size=6,
        ).map(np.asarray)
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_functional_softmax(self, scores):
        # centred scores span <= 4 units, inside the exp fit's interval
        e = exp_paf((-4.0, 2.0), degree=5, squarings=3)
        init = affine_recip_init((0.5, 4.0 * np.e**2))
        got = paf_softmax(scores, e, init, recip_iters=5)
        want = F.softmax(Tensor(scores), axis=-1).data
        np.testing.assert_allclose(got, want, atol=2e-3)
        np.testing.assert_allclose(got.sum(axis=-1), 1.0, atol=2e-3)


class TestPafLayerNorm:
    def test_matches_functional_layer_norm(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.0, 1.0, size=(8, 16))
        # per-row variances of N(0,1) rows of width 16 live inside (0.25, 4)
        rsqrt = rsqrt_paf((0.25, 4.0), degree=10)
        got = paf_layer_norm(x, rsqrt)
        want = F.layer_norm(Tensor(x)).data
        np.testing.assert_allclose(got, want, atol=2e-2)
