"""Tests for the AESPA-style quadratic baseline (§7 comparison)."""

import numpy as np

from repro.nn import Adam, Tensor
from repro.paf import get_paf
from repro.paf.quadratic import QuadraticReLU, hermite_quadratic_coeffs, quadratic_relu
from repro.paf.relu import paf_relu


class TestHermiteCoeffs:
    def test_closed_form_is_least_squares_optimum(self):
        """The closed form matches a numeric LS fit under N(0,1)."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=200_000)
        design = np.stack([np.ones_like(x), x, x * x], axis=1)
        target = np.maximum(x, 0)
        numeric, *_ = np.linalg.lstsq(design, target, rcond=None)
        np.testing.assert_allclose(numeric, hermite_quadratic_coeffs(), atol=5e-3)

    def test_reasonable_near_origin(self):
        x = np.linspace(-1, 1, 201)
        err = np.abs(quadratic_relu(x) - np.maximum(x, 0))
        assert err.max() < 0.45
        assert err.mean() < 0.15

    def test_error_explodes_away_from_fitted_density(self):
        """§7's fragility: the quadratic diverges quadratically outside the
        fitted range while a scaled sign-composite stays bounded."""
        x = np.array([6.0])
        quad_err = abs(float(quadratic_relu(x)[0]) - 6.0)
        paf = get_paf("f1f1g1g1")
        paf_err = abs(float(paf_relu(x, paf, scale=6.0)[0]) - 6.0)
        assert quad_err > 1.0
        assert paf_err < 0.5


class TestQuadraticReLULayer:
    def test_forward_matches_function(self):
        layer = QuadraticReLU()
        x = np.linspace(-2, 2, 41)
        np.testing.assert_allclose(
            layer(Tensor(x)).data, quadratic_relu(x), rtol=1e-12
        )

    def test_depth_is_one(self):
        assert QuadraticReLU.mult_depth == 1

    def test_coefficients_trainable(self):
        layer = QuadraticReLU()
        rng = np.random.default_rng(1)
        x = rng.normal(size=512)
        target = np.maximum(x, 0)
        opt = Adam(layer.parameters(), lr=1e-2)

        def mse():
            d = layer(Tensor(x)) - Tensor(target)
            return (d * d).mean()

        before = mse().item()
        for _ in range(50):
            loss = mse()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert mse().item() <= before + 1e-12

    def test_cheaper_than_any_composite(self):
        """depth 1 < the shallowest SMART-PAF form (f1∘g2: 5)."""
        assert QuadraticReLU.mult_depth < get_paf("f1g2").mult_depth
