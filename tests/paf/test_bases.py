"""Tests for the Cheon f/g bases and the published α=7 coefficients.

The untrained coefficient values are cross-checked against the paper's
appendix: Tab. 11 layer-4 holds untrained f2 = (1.875, -1.25, 0.375) and
g2 = (3.255859375, -5.96484375, 3.70703125); Tab. 10 layer-6 holds
untrained g3 = (4.4814453125, -16.1884765625, 25.013671875, -12.55859375).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paf import bases
from repro.paf.bases import F1, F2, G1, G2, G3, f_coeffs, f_poly, g_poly, minimax_alpha7


class TestFPolynomials:
    def test_f1_closed_form(self):
        assert F1.coeffs == (1.5, -0.5)

    def test_f2_matches_paper_appendix(self):
        # Untrained f2 row in the paper's Tab. 11 (layer 4).
        assert F2.coeffs == (1.875, -1.25, 0.375)

    def test_f3_values(self):
        # f3 = x + 1/2 x(1-x^2) + 3/8 x(1-x^2)^2 + 5/16 x(1-x^2)^3
        c = f_coeffs(3)
        x = 0.37
        direct = (
            x
            + 0.5 * x * (1 - x**2)
            + 0.375 * x * (1 - x**2) ** 2
            + 0.3125 * x * (1 - x**2) ** 3
        )
        poly = f_poly(3)
        assert poly(x) == pytest.approx(direct, rel=1e-12)
        assert len(c) == 4

    def test_f_rejects_bad_n(self):
        with pytest.raises(ValueError):
            f_coeffs(0)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_f_fixes_pm_one(self, n):
        """f_n(1) = 1 and f_n(-1) = -1 for every n (sign fixpoints)."""
        p = f_poly(n)
        assert p(1.0) == pytest.approx(1.0, abs=1e-9)
        assert p(-1.0) == pytest.approx(-1.0, abs=1e-9)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_f_contracts_toward_sign(self, n):
        """|f_n(x) - sign(x)| <= |x - sign(x)| on (0, 1] — each application
        moves values toward ±1 (the mechanism behind composite convergence)."""
        p = f_poly(n)
        x = np.linspace(0.05, 1.0, 97)
        assert np.all(np.abs(p(x) - 1.0) <= np.abs(x - 1.0) + 1e-12)

    def test_f_monotone_on_unit_interval(self):
        """f_n is increasing on [-1, 1] (needed for composition stability)."""
        for n in (1, 2, 3):
            p = f_poly(n)
            x = np.linspace(-1, 1, 501)
            assert np.all(np.diff(p(x)) > -1e-12)


class TestGPolynomials:
    def test_g1_published_constants(self):
        assert G1.coeffs == (2126 / 1024, -1359 / 1024)

    def test_g2_matches_paper_appendix(self):
        assert G2.coeffs == (3.255859375, -5.96484375, 3.70703125)

    def test_g3_matches_paper_appendix(self):
        assert G3.coeffs == (
            4.4814453125,
            -16.1884765625,
            25.013671875,
            -12.55859375,
        )

    def test_g_rejects_unknown_n(self):
        with pytest.raises(ValueError):
            g_poly(4)

    def test_g_expands_small_values(self):
        """g_n amplifies small inputs (|g(x)| > |x| near 0) — that is its
        role: accelerate small values toward the f-basins."""
        for n in (1, 2, 3):
            p = g_poly(n)
            x = np.linspace(0.01, 0.2, 50)
            assert np.all(p(x) > x)


class TestMinimaxAlpha7:
    def test_composition_order_p1_then_p2(self):
        """The composite is p7,2(p7,1(x)) — p1 innermost."""
        paf = minimax_alpha7()
        assert paf.components[0].name == "p7_1"
        assert paf.components[1].name == "p7_2"

    def test_structure(self):
        paf = minimax_alpha7()
        assert paf.reported_degree == 12
        assert paf.mult_depth == 6
        assert paf.degree_sum == 14  # two degree-7 components

    def test_accuracy_band(self):
        """Published coefficients approximate sign within 2^-6 on [0.09, 1]."""
        paf = minimax_alpha7()
        x = np.linspace(0.09, 1.0, 2000)
        assert np.max(np.abs(paf(x) - 1.0)) <= 2**-6

    def test_fresh_copy_each_call(self):
        assert minimax_alpha7() is not minimax_alpha7()
        assert bases.MINIMAX_ALPHA7 is not minimax_alpha7()
