"""Unit + property tests for OddPolynomial and CompositePAF."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paf import CompositePAF, OddPolynomial, mult_depth_of_degree


class TestMultDepth:
    @pytest.mark.parametrize(
        "degree,expected",
        [(1, 1), (3, 2), (5, 3), (7, 3), (9, 4), (15, 4), (27, 5), (31, 5)],
    )
    def test_known_depths(self, degree, expected):
        assert mult_depth_of_degree(degree) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mult_depth_of_degree(0)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_formula(self, degree):
        assert mult_depth_of_degree(degree) == math.ceil(math.log2(degree + 1))


class TestOddPolynomial:
    def test_degree_and_depth(self):
        p = OddPolynomial([1.0, -0.5, 0.25])
        assert p.degree == 5
        assert p.mult_depth == 3
        assert p.num_coeffs == 3

    def test_empty_coeffs_rejected(self):
        with pytest.raises(ValueError):
            OddPolynomial([])

    def test_evaluation_matches_naive(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=4)
        p = OddPolynomial(coeffs)
        x = rng.uniform(-1, 1, size=100)
        naive = sum(c * x ** (2 * i + 1) for i, c in enumerate(coeffs))
        np.testing.assert_allclose(p(x), naive, rtol=1e-12)

    def test_scalar_input(self):
        p = OddPolynomial([1.5, -0.5])
        assert p(1.0) == pytest.approx(1.0)
        assert p(0.0) == pytest.approx(0.0)

    def test_oddness(self):
        p = OddPolynomial([2.0, -1.0, 0.3])
        x = np.linspace(-1, 1, 31)
        np.testing.assert_allclose(p(-x), -p(x), atol=1e-14)

    def test_derivative_matches_numeric(self):
        p = OddPolynomial([1.5, -0.5, 0.1])
        x = np.linspace(-0.9, 0.9, 17)
        h = 1e-6
        numeric = (p(x + h) - p(x - h)) / (2 * h)
        np.testing.assert_allclose(p.derivative(x), numeric, rtol=1e-6, atol=1e-8)

    def test_dense_coeffs(self):
        p = OddPolynomial([1.0, 2.0])
        np.testing.assert_array_equal(p.dense_coeffs(), [0, 1, 0, 2])

    def test_scaled_input_identity(self):
        p = OddPolynomial([1.5, -0.5])
        q = p.scaled_input(2.0)
        x = np.linspace(-2, 2, 21)
        np.testing.assert_allclose(q(x), p(x / 2.0), atol=1e-14)

    def test_scaled_output(self):
        p = OddPolynomial([1.5, -0.5])
        q = p.scaled_output(3.0)
        x = np.linspace(-1, 1, 21)
        np.testing.assert_allclose(q(x), 3.0 * p(x), atol=1e-14)

    def test_scaled_input_rejects_nonpositive(self):
        p = OddPolynomial([1.0])
        with pytest.raises(ValueError):
            p.scaled_input(0.0)

    def test_with_coeffs_wrong_length(self):
        p = OddPolynomial([1.0, 2.0])
        with pytest.raises(ValueError):
            p.with_coeffs([1.0])

    @given(
        st.lists(
            st.floats(min_value=-3, max_value=3, allow_nan=False), min_size=1, max_size=5
        ),
        st.floats(min_value=-1, max_value=1, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_oddness_property(self, coeffs, x):
        p = OddPolynomial(coeffs)
        assert p(-x) == pytest.approx(-p(x), abs=1e-9)


class TestCompositePAF:
    def _paf(self):
        f1 = OddPolynomial([1.5, -0.5], name="f1")
        g2 = OddPolynomial([3.255859375, -5.96484375, 3.70703125], name="g2")
        return CompositePAF([g2, f1], name="f1 o g2", reported_degree=5)

    def test_structure(self):
        paf = self._paf()
        assert paf.degree_sum == 8
        assert paf.degree_product == 15
        assert paf.reported_degree == 5
        assert paf.mult_depth == 5  # depth(g2)=3 + depth(f1)=2
        assert paf.num_components == 2
        assert paf.num_coeffs() == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositePAF([])

    def test_evaluation_is_composition(self):
        paf = self._paf()
        x = np.linspace(-1, 1, 41)
        inner, outer = paf.components
        np.testing.assert_allclose(paf(x), outer(inner(x)), atol=1e-14)

    def test_intermediate_values(self):
        paf = self._paf()
        x = np.linspace(-1, 1, 5)
        vals = paf.intermediate_values(x)
        assert len(vals) == 3
        np.testing.assert_allclose(vals[0], x)
        np.testing.assert_allclose(vals[-1], paf(x), atol=1e-14)

    def test_flat_coeffs_roundtrip(self):
        paf = self._paf()
        flat = paf.flat_coeffs()
        rebuilt = paf.with_flat_coeffs(flat)
        x = np.linspace(-1, 1, 17)
        np.testing.assert_allclose(rebuilt(x), paf(x), atol=1e-14)
        assert rebuilt.name == paf.name
        assert rebuilt.reported_degree == paf.reported_degree

    def test_with_flat_coeffs_wrong_size(self):
        paf = self._paf()
        with pytest.raises(ValueError):
            paf.with_flat_coeffs(np.zeros(3))

    def test_with_flat_coeffs_changes_eval(self):
        paf = self._paf()
        flat = paf.flat_coeffs()
        flat[0] *= 2.0
        changed = paf.with_flat_coeffs(flat)
        x = np.array([0.5])
        assert float(changed(x)[0]) != pytest.approx(float(paf(x)[0]))

    def test_scaled_input_folds_into_innermost(self):
        paf = self._paf()
        scaled = paf.scaled_input(4.0)
        x = np.linspace(-4, 4, 33)
        np.testing.assert_allclose(scaled(x), paf(x / 4.0), atol=1e-12)
        # only the innermost component changed
        assert scaled.components[1].coeffs == paf.components[1].coeffs

    def test_copy_is_independent(self):
        paf = self._paf()
        cp = paf.copy()
        assert cp is not paf
        assert cp.components == paf.components  # shallow copy of immutable parts

    def test_oddness_of_composite(self):
        paf = self._paf()
        x = np.linspace(-1, 1, 101)
        np.testing.assert_allclose(paf(-x), -paf(x), atol=1e-12)
