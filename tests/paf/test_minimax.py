"""Tests for the Remez exchange and minimax composite construction."""

import numpy as np
import pytest

from repro.paf.minimax import (
    composite_precision,
    minimax_alpha10_deg27,
    minimax_composite,
    remez_odd_sign,
)


class TestRemezOddSign:
    def test_rejects_even_degree(self):
        with pytest.raises(ValueError):
            remez_odd_sign(4, 0.1)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            remez_odd_sign(3, 0.5, 0.2)
        with pytest.raises(ValueError):
            remez_odd_sign(3, -0.1, 1.0)

    def test_degree1_closed_form(self):
        """Best odd linear c*x on [a, 1]: equioscillation at a and 1 gives
        c = 2/(1+a), error = (1-a)/(1+a)."""
        a = 0.25
        res = remez_odd_sign(1, a)
        assert res.poly.coeffs[0] == pytest.approx(2 / (1 + a), rel=1e-6)
        assert res.error == pytest.approx((1 - a) / (1 + a), rel=1e-5)

    def test_error_decreases_with_degree(self):
        errs = [remez_odd_sign(d, 0.05).error for d in (3, 7, 15, 27)]
        assert all(e1 > e2 for e1, e2 in zip(errs, errs[1:]))

    def test_error_decreases_with_larger_tau(self):
        errs = [remez_odd_sign(7, a).error for a in (0.01, 0.05, 0.2, 0.5)]
        assert all(e1 > e2 for e1, e2 in zip(errs, errs[1:]))

    def test_equioscillation_is_attained_inside(self):
        """Max error on the interval equals the equioscillation level and is
        attained at >= k+1 near-extremal points."""
        res = remez_odd_sign(7, 0.1)
        x = np.linspace(0.1, 1.0, 20001)
        err = np.abs(res.poly(x) - 1.0)
        assert err.max() == pytest.approx(res.error, rel=1e-3)
        near = np.sum(err >= 0.999 * res.error)
        assert near >= 4  # k+1 = 5 extrema; discrete grid may merge ends

    def test_result_is_odd_polynomial(self):
        res = remez_odd_sign(5, 0.2)
        x = np.linspace(-1, 1, 101)
        np.testing.assert_allclose(res.poly(-x), -res.poly(x), atol=1e-12)


class TestMinimaxComposite:
    def test_chaining_reduces_error(self):
        single = remez_odd_sign(15, 0.05).error
        comp = minimax_composite((15, 15), tau=0.05)
        x = np.linspace(0.05, 1, 5001)
        comp_err = np.max(np.abs(comp(x) - 1))
        assert comp_err < single / 4

    def test_alpha10_reaches_ten_bits(self):
        paf = minimax_alpha10_deg27()
        prec = composite_precision(paf, tau=1 / 64)
        assert prec >= 10.0

    def test_alpha10_structure_matches_table2(self):
        paf = minimax_alpha10_deg27()
        assert paf.reported_degree == 27
        assert paf.mult_depth == 10
        assert max(c.degree for c in paf.components) == 27

    def test_alpha10_cache_returns_copies(self):
        a = minimax_alpha10_deg27()
        b = minimax_alpha10_deg27()
        assert a is not b
        np.testing.assert_allclose(a.flat_coeffs(), b.flat_coeffs())

    def test_composite_precision_infinite_for_exact(self):

        # a "composite" that is exactly 1 at the single sampled point set
        # cannot happen with odd polys; instead check the monotone contract:
        better = minimax_composite((15, 27), tau=0.05)
        worse = minimax_composite((3, 7), tau=0.05)
        assert composite_precision(better, 0.05) > composite_precision(worse, 0.05)
