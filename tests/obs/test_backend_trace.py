"""Tracing over the vectorized backend: invariants and parity.

The execution tracer must be backend-agnostic: a traced forward under
the ``vectorized`` kernel backend produces a trace that passes every
``tools/check_trace.py`` invariant (schema, nesting, op accounting,
level monotonicity), reports exactly the same per-layer HE-op deltas as
the same forward under ``reference`` (op counts are evaluator-level and
backend-invariant — docs/backends.md), and names the executing backend
in its header so archived traces are attributable.
"""

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.obs import TracingEvaluator

TOOLS = Path(__file__).resolve().parents[2] / "tools"


def load_tool(name: str):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def check_trace():
    return load_tool("check_trace").check_trace


@pytest.fixture(scope="module")
def traces(toy_cnn_enc):
    """One encryption, one traced CNN forward per backend.

    The trace header reads the *live* backend, so the dict export is
    captured while each backend is still active.
    """
    enc = toy_cnn_enc
    ctx = enc.ctx
    x = np.random.default_rng(31).normal(size=64)
    ct = enc.encrypt_input(x)
    out = {}
    orig = ctx.backend.name
    try:
        for name in ("reference", "vectorized"):
            ctx.set_backend(name)
            tev = TracingEvaluator(enc.ev)
            enc.forward(ct.copy(), ev=tev)
            out[name] = (tev.tracer, tev.tracer.to_dict())
    finally:
        ctx.set_backend(orig)
    return out


class TestVectorizedBackendTracing:
    def test_vectorized_trace_passes_all_invariants(self, traces, check_trace):
        assert check_trace(traces["vectorized"][1], "vectorized") == []

    def test_reference_trace_passes_all_invariants(self, traces, check_trace):
        assert check_trace(traces["reference"][1], "reference") == []

    def test_per_layer_op_deltas_identical(self, traces):
        def layer_ops(tracer):
            return [(sp.name, dict(sp.ops)) for sp in tracer.layer_spans()]

        ref = layer_ops(traces["reference"][0])
        vec = layer_ops(traces["vectorized"][0])
        assert ref, "traced forward recorded no layer spans"
        assert vec == ref

    def test_header_names_executing_backend(self, traces):
        for name, (_, exported) in traces.items():
            assert exported["context"]["backend"] == name

    def test_root_span_tagged_with_backend(self, traces):
        for name, (tracer, _) in traces.items():
            root = tracer.roots[0]
            assert root.kind == "forward"
            assert root.attrs["backend"] == name
