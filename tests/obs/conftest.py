"""Shared fixtures: compiled toy models for the observability suite.

Session-scoped — keygen and compilation are paid once for the whole
differential suite (the traced/untraced forwards themselves are the
per-test work).
"""

import pytest

from repro.fhe.toy import compiled_toy, compiled_toy_cnn, compiled_toy_resnet


@pytest.fixture(scope="session")
def toy_enc():
    """Compiled 8 -> 6 -> 3 MLP in production form."""
    return compiled_toy()


@pytest.fixture(scope="session")
def toy_cnn_enc():
    """Compiled trained 2-conv CNN."""
    return compiled_toy_cnn()


@pytest.fixture(scope="session")
def toy_resnet_enc():
    """Compiled trained 2-block ResNet, channels across 2 ciphertexts."""
    return compiled_toy_resnet()
