"""Slack reports and the tools/ trace pipeline over synthetic traces.

Builds small hand-rolled ``repro-trace-v1`` dicts (no crypto) and runs
them through :mod:`repro.obs.report` and the stdlib-only CI scripts —
``check_trace``, ``check_slack``, ``trace_to_chrome`` — including the
corrupted variants each gate must reject.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.obs import format_slack_report, slack_baseline_entry, slack_report

TOOLS = Path(__file__).resolve().parents[2] / "tools"


def load_tool(name: str):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


def make_span(span_id, parent, name, kind, start, dur, ops=None, **extra):
    return {
        "id": span_id,
        "parent": parent,
        "name": name,
        "kind": kind,
        "start_ms": start,
        "duration_ms": dur,
        "ops": ops or {},
        "entry": extra.get("entry"),
        "exit": extra.get("exit"),
        "attrs": extra.get("attrs", {}),
    }


def make_trace(model="toy"):
    """A well-formed two-layer forward trace."""
    def lvl(level):
        return {"level": level, "log2_scale": 40.0, "scale_drift": 0.0}
    return {
        "format": "repro-trace-v1",
        "model": model,
        "spans": [
            make_span(
                0, None, "forward", "forward", 0.0, 10.0,
                ops={"rotate": 4, "mul": 2, "rescale": 3},
                entry=lvl(5), exit=lvl(2),
            ),
            make_span(
                1, 0, "layer00:linear", "layer", 0.5, 4.0,
                ops={"rotate": 4, "rescale": 1},
                entry=lvl(5), exit=lvl(4), attrs={"level_slack": 1},
            ),
            make_span(
                2, 0, "layer01:paf", "layer", 5.0, 4.5,
                ops={"mul": 2, "rescale": 2},
                entry=lvl(4), exit=lvl(2),
                attrs={"level_slack": 0},
            ),
            make_span(
                3, 2, "poly:ps", "poly", 5.5, 3.0,
                ops={"mul": 2, "rescale": 2},
                entry=lvl(4), exit=lvl(2),
            ),
        ],
    }


class TestSlackReport:
    def test_report_fields(self):
        rep = slack_report(make_trace())
        assert rep["model"] == "toy"
        assert [r["name"] for r in rep["layers"]] == [
            "layer00:linear",
            "layer01:paf",
        ]
        assert rep["min_slack"] == 0
        assert rep["tightest"] == ["layer01:paf"]
        assert rep["max_abs_drift"] == 0.0
        paf = rep["layers"][1]
        assert paf["keyswitches"] == 2  # its 2 ct*ct mults relinearise
        assert paf["nonscalar_mults"] == 2
        assert paf["entry_level"] == 4 and paf["exit_level"] == 2

    def test_format_mentions_tightest_layer(self):
        text = format_slack_report(slack_report(make_trace()))
        assert "layer01:paf" in text
        assert "min slack 0" in text

    def test_baseline_entry(self):
        entry = slack_baseline_entry(slack_report(make_trace()))
        assert entry == {
            "layers": {"layer00:linear": 1, "layer01:paf": 0},
            "min_slack": 0,
        }


class TestCheckTrace:
    @pytest.fixture(scope="class")
    def tool(self):
        return load_tool("check_trace")

    def test_valid_trace_passes(self, tool):
        assert tool.check_trace(make_trace()) == []

    def test_bad_format_tag(self, tool):
        assert tool.check_trace({"format": "v0", "spans": []})

    def test_parent_must_be_earlier_span(self, tool):
        trace = make_trace()
        trace["spans"][1]["parent"] = 3
        assert any("parent" in e for e in tool.check_trace(trace))

    def test_child_escaping_parent_interval(self, tool):
        trace = make_trace()
        trace["spans"][3]["duration_ms"] = 100.0
        assert any("escapes" in e for e in tool.check_trace(trace))

    def test_parent_ops_must_cover_children(self, tool):
        trace = make_trace()
        trace["spans"][3]["ops"]["mul"] = 99
        assert any("ops[mul]" in e for e in tool.check_trace(trace))

    def test_level_must_not_increase(self, tool):
        trace = make_trace()
        trace["spans"][1]["exit"]["level"] = 9
        assert any("above entry level" in e for e in tool.check_trace(trace))

    def test_layer_ops_must_balance_root(self, tool):
        trace = make_trace()
        trace["spans"][0]["ops"]["rotate"] = 5  # root claims an extra rotate
        assert any("summed layer ops" in e for e in tool.check_trace(trace))


class TestCheckSlack:
    @pytest.fixture(scope="class")
    def tool(self):
        return load_tool("check_slack")

    def test_slack_of(self, tool):
        model, layers = tool.slack_of(make_trace())
        assert model == "toy"
        assert layers == {"layer00:linear": 1, "layer01:paf": 0}

    def test_drop_is_a_regression(self, tool):
        baseline = {
            "models": {"toy": {"layers": {"layer00:linear": 1}, "min_slack": 1}}
        }
        regressions, improvements = tool.compare(
            baseline, {"toy": {"layer00:linear": 0}}
        )
        assert regressions and not improvements

    def test_gain_is_an_improvement(self, tool):
        baseline = {
            "models": {"toy": {"layers": {"layer00:linear": 0}, "min_slack": 0}}
        }
        regressions, improvements = tool.compare(
            baseline, {"toy": {"layer00:linear": 2}}
        )
        assert improvements and not regressions

    def test_missing_model_fails(self, tool):
        baseline = {"models": {"toy": {"layers": {"a": 1}, "min_slack": 1}}}
        regressions, _ = tool.compare(baseline, {})
        assert regressions

    def test_update_then_check_round_trips(self, tool, tmp_path):
        trace_path = tmp_path / "trace_toy.json"
        trace_path.write_text(json.dumps(make_trace()))
        baseline = tmp_path / "slack_baseline.json"
        assert (
            tool.main(
                ["check_slack", str(trace_path), "--baseline", str(baseline),
                 "--update"]
            )
            == 0
        )
        assert (
            tool.main(
                ["check_slack", str(trace_path), "--baseline", str(baseline)]
            )
            == 0
        )


class TestTraceToChrome:
    @pytest.fixture(scope="class")
    def tool(self):
        return load_tool("trace_to_chrome")

    def test_events_map_spans(self, tool):
        chrome = tool.to_chrome(make_trace())
        events = chrome["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata record
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 4
        layer = next(e for e in xs if e["name"] == "layer00:linear")
        assert layer["cat"] == "layer"
        assert layer["ts"] == pytest.approx(500.0)    # 0.5 ms in µs
        assert layer["dur"] == pytest.approx(4000.0)  # 4.0 ms in µs
        assert layer["args"]["ops"] == {"rotate": 4, "rescale": 1}
        assert layer["args"]["level_slack"] == 1
        assert layer["args"]["entry"]["level"] == 5

    def test_rejects_foreign_format(self, tool):
        with pytest.raises(ValueError):
            tool.to_chrome({"format": "something-else", "spans": []})
