"""Tracer mechanics: span trees, op deltas, export schema, null spans.

All pure-Python — no cryptography; the crypto-facing guarantees
(non-perturbation, op-delta balance) live in ``test_differential.py``.
"""

import json
from collections import Counter
from types import SimpleNamespace

import pytest

from repro.ckks.instrumentation import NULL_SPAN, span
from repro.obs import TRACE_FORMAT, Tracer


def fake_ct(level=5, scale=2.0**40):
    return SimpleNamespace(level=level, scale=scale)


class TestSpanTree:
    def test_nesting(self):
        t = Tracer()
        with t.span("root"):
            with t.span("a"):
                with t.span("a1"):
                    pass
            with t.span("b"):
                pass
        assert [s.name for s in t.iter_spans()] == ["root", "a", "a1", "b"]
        (root,) = t.roots
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a1"]

    def test_sibling_roots(self):
        t = Tracer()
        with t.span("first"):
            pass
        with t.span("second"):
            pass
        assert [r.name for r in t.roots] == ["first", "second"]

    def test_durations_nest(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert outer.start_s <= inner.start_s
        assert (
            inner.start_s + inner.duration_s
            <= outer.start_s + outer.duration_s
        )

    def test_leaked_inner_span_unwinds(self):
        # closing an outer span pops any inner span left open, so a
        # mid-layer exception can't corrupt the next batch's tree
        t = Tracer()
        outer = t.span("outer")
        outer.__enter__()
        t.span("leaked").__enter__()
        outer.__exit__(None, None, None)
        with t.span("next"):
            pass
        assert [r.name for r in t.roots] == ["outer", "next"]

    def test_reset_drops_spans(self):
        t = Tracer()
        with t.span("gone"):
            pass
        t.reset()
        assert t.roots == []
        with t.span("kept"):
            pass
        assert [r.name for r in t.roots] == ["kept"]

    def test_attrs_and_set(self):
        t = Tracer()
        with t.span("s", kind="layer", layer=3) as sp:
            sp.set(extra="x")
        assert sp.kind == "layer"
        assert sp.attrs == {"layer": 3, "extra": "x"}


class TestOpDeltas:
    def test_deltas_diff_live_counter(self):
        counts = Counter()
        t = Tracer(counts=counts)
        counts["rotate"] += 2
        with t.span("outer") as outer:
            counts["rotate"] += 3
            with t.span("inner") as inner:
                counts["mul"] += 1
                counts["rescale"] += 2
        assert inner.ops == {"mul": 1, "rescale": 2}
        # outer includes its own rotations plus everything inner did
        assert outer.ops == {"rotate": 3, "mul": 1, "rescale": 2}
        assert outer.keyswitches == 4
        assert outer.nonscalar_mults == 1

    def test_zero_deltas_omitted(self):
        counts = Counter(rotate=7)
        t = Tracer(counts=counts)
        with t.span("idle") as sp:
            pass
        assert sp.ops == {}


class TestCtState:
    def test_reads_level_and_scale(self):
        t = Tracer()
        state = t.ct_state(fake_ct(level=4, scale=2.0**40))
        assert state["level"] == 4
        assert state["log2_scale"] == pytest.approx(40.0)
        assert "scale_drift" not in state  # no context, no schedule

    def test_shard_list_uses_first(self):
        t = Tracer()
        state = t.ct_state([fake_ct(level=2), fake_ct(level=9)])
        assert state["level"] == 2

    def test_scale_drift_against_schedule(self):
        # S_2 = 2^40; q_2 = 2^40 exactly, so S_1 = S_2²/q_2 = 2^40 too
        ctx = SimpleNamespace(
            max_level=2, scale=2.0**40, q_chain=[None, 2**40, 2**40]
        )
        t = Tracer(ctx=ctx)
        assert t.scheduled_scale(2) == 2.0**40
        assert t.scheduled_scale(1) == 2.0**40
        on = t.ct_state(fake_ct(level=1, scale=2.0**40))
        assert on["scale_drift"] == pytest.approx(0.0)
        off = t.ct_state(fake_ct(level=1, scale=2.0**40 * 1.5))
        assert off["scale_drift"] == pytest.approx(0.5)

    def test_ct_entry_exit_and_slack(self):
        t = Tracer()
        with t.span("layer", kind="layer") as sp:
            sp.ct_entry(fake_ct(level=5))
            sp.ct_exit(fake_ct(level=4), level_slack=2)
        assert sp.entry["level"] == 5
        assert sp.exit["level"] == 4
        assert sp.attrs["level_slack"] == 2


class TestExport:
    def build(self):
        counts = Counter()
        t = Tracer(counts=counts)
        with t.span("forward", kind="forward"):
            with t.span("layer00:linear", kind="layer") as sp:
                counts["rotate"] += 4
                sp.ct_entry(fake_ct(level=3))
                sp.ct_exit(fake_ct(level=2), level_slack=1)
        return t

    def test_to_dict_schema(self):
        d = self.build().to_dict(meta={"model": "m"})
        assert d["format"] == TRACE_FORMAT
        assert d["model"] == "m"
        assert [s["id"] for s in d["spans"]] == [0, 1]
        assert [s["parent"] for s in d["spans"]] == [None, 0]
        layer = d["spans"][1]
        assert layer["ops"] == {"rotate": 4}
        assert layer["entry"]["level"] == 3
        assert layer["attrs"]["level_slack"] == 1
        assert layer["duration_ms"] >= 0

    def test_json_round_trip(self, tmp_path):
        t = self.build()
        path = tmp_path / "trace.json"
        t.write_json(path, meta={"model": "m"})
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(t.to_json(meta={"model": "m"}))

    def test_layer_spans_in_execution_order(self):
        t = Tracer()
        with t.span("forward", kind="forward"):
            for i in range(3):
                with t.span(f"layer{i:02d}:linear", kind="layer"):
                    pass
        assert [s.name for s in t.layer_spans()] == [
            "layer00:linear",
            "layer01:linear",
            "layer02:linear",
        ]


class TestNullSpan:
    def test_plain_evaluator_gets_null_span(self):
        # any object without a .tracer attribute — the disabled path
        assert span(object(), "anything") is NULL_SPAN

    def test_null_span_is_inert(self):
        with span(object(), "x", kind="layer") as sp:
            assert sp is NULL_SPAN
            sp.ct_entry(fake_ct())
            sp.ct_exit(fake_ct(), level_slack=0)
            sp.set(a=1)

    def test_traced_evaluator_gets_real_span(self):
        t = Tracer()
        ev = SimpleNamespace(tracer=t)
        with span(ev, "real", kind="layer") as sp:
            assert sp is not NULL_SPAN
        assert [r.name for r in t.roots] == ["real"]
