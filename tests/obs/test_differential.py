"""Tracing is provably non-perturbing: traced == untraced, bit for bit.

The tentpole guarantee of the observability layer — attaching a
:class:`~repro.obs.TracingEvaluator` must change *nothing* about the
homomorphic computation: ciphertext polynomials identical to the last
coefficient, HE-op totals identical, decrypted logits identical.  On
top of that, the recorded span tree's books must balance: the summed
per-layer op deltas equal the ``CountingEvaluator`` aggregate, children
nest inside their parents, and levels only ever go down.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.instrumentation import CountingEvaluator
from repro.obs import TracingEvaluator


def assert_bit_identical(a, b):
    """Ciphertext equality down to the RNS coefficient arrays."""
    assert a.level == b.level
    assert a.scale == b.scale
    np.testing.assert_array_equal(a.c0.data, b.c0.data)
    np.testing.assert_array_equal(a.c1.data, b.c1.data)


def assert_span_tree_balances(tracer, counting):
    """Layer op deltas sum to the aggregate; intervals nest; levels fall."""
    layers = tracer.layer_spans()
    assert layers, "traced forward recorded no layer spans"
    for op, total in counting.counts.items():
        if total:
            assert sum(sp.ops.get(op, 0) for sp in layers) == total, op
    assert sum(sp.keyswitches for sp in layers) == counting.keyswitch_count
    assert (
        sum(sp.nonscalar_mults for sp in layers)
        == counting.nonscalar_mult_count
    )
    for sp in tracer.iter_spans():
        for child in sp.children:
            assert child.start_s >= sp.start_s
            assert (
                child.start_s + child.duration_s
                <= sp.start_s + sp.duration_s + 1e-9
            )
        if sp.entry is not None and sp.exit is not None:
            assert sp.exit["level"] <= sp.entry["level"]
        if sp.kind == "layer":
            assert "level_slack" in sp.attrs
            assert sp.attrs["level_slack"] >= 0


def traced_pair(enc, forward):
    """Run ``forward(ev)`` untraced and traced (encryption is randomized,
    so callers encrypt once and hand ``forward`` ciphertext copies);
    returns both results + the tracing evaluator."""
    counting = CountingEvaluator(enc.ev)
    base = forward(counting)
    base_counts = dict(counting.counts)

    tev = TracingEvaluator(enc.ev)
    traced = forward(tev)
    assert dict(tev.counting.counts) == base_counts
    return base, traced, tev


class TestMlpDifferential:
    @given(st.lists(st.floats(-1.0, 1.0), min_size=8, max_size=8))
    @settings(max_examples=8, deadline=None)
    def test_traced_forward_bit_identical(self, toy_enc, xs):
        enc = toy_enc
        ct = enc.encrypt_batch([np.asarray(xs)])

        def forward(ev):
            return enc.forward(ct.copy(), ev=ev)

        base, traced, tev = traced_pair(enc, forward)
        assert_bit_identical(base, traced)
        np.testing.assert_array_equal(
            enc.decrypt_logits(base, 3), enc.decrypt_logits(traced, 3)
        )
        assert_span_tree_balances(tev.tracer, tev.counting)

    def test_root_span_covers_whole_forward(self, toy_enc):
        enc = toy_enc
        tev = TracingEvaluator(enc.ev)
        ct = enc.encrypt_batch([np.linspace(-1, 1, 8)], ev=tev)
        tev.reset()
        tev.tracer.reset()
        enc.forward(ct, ev=tev)
        (root,) = tev.tracer.roots
        assert root.kind == "forward"
        assert [c.kind for c in root.children] == ["layer"] * len(enc.layers)
        # every op the aggregate saw happened inside the root span
        assert root.ops == {
            k: v for k, v in tev.counting.counts.items() if v
        }


class TestCnnDifferential:
    def test_traced_forward_bit_identical(self, toy_cnn_enc):
        enc = toy_cnn_enc
        ct = enc.encrypt_batch([np.linspace(-0.5, 0.5, 64)])

        def forward(ev):
            return enc.forward(ct.copy(), ev=ev)

        base, traced, tev = traced_pair(enc, forward)
        assert_bit_identical(base, traced)
        assert_span_tree_balances(tev.tracer, tev.counting)
        kinds = [sp.name.split(":")[1] for sp in tev.tracer.layer_spans()]
        assert "pool" in kinds  # the pool executor ran under a layer span


class TestResnetDifferential:
    def test_traced_forward_shards_bit_identical(self, toy_resnet_enc):
        enc = toy_resnet_enc
        x = np.linspace(-0.5, 0.5, sum(enc.input_splits))
        cts = enc.encrypt_batch_shards([x])

        def forward(ev):
            return enc.forward_shards([c.copy() for c in cts], ev=ev)

        base, traced, tev = traced_pair(enc, forward)
        assert len(base) == len(traced)
        for b, t in zip(base, traced):
            assert_bit_identical(b, t)
        assert_span_tree_balances(tev.tracer, tev.counting)
        (root,) = tev.tracer.roots
        assert root.name == "forward_shards"
        # one input shard at entry; the stem fans channels out to 2
        assert root.attrs["shards"] == len(cts)
        # merges and residual taps traced as layers of the sharded plan
        kinds = {sp.name.split(":")[1] for sp in tev.tracer.layer_spans()}
        assert {"residual", "merge", "paf", "linear", "pool"} <= kinds
