"""The op-count gate's backend-invariance machinery, without crypto.

Two halves, both stdlib-fast:

* ``tools/check_opcounts.py --invariant`` — the CI-side byte-compare of
  two summaries' gate metrics;
* ``benchmarks/opcount_summary.py``'s ``verify_backend_invariance`` —
  the producer-side re-measure-under-every-backend assertion (driven
  here with fake contexts/counters so no model is compiled).
"""

import importlib.util
import json
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

ROOT = Path(__file__).resolve().parents[1]


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def check_opcounts():
    return load_module(ROOT / "tools" / "check_opcounts.py")


@pytest.fixture(scope="module")
def opcount_summary():
    sys.path.insert(0, str(ROOT / "benchmarks"))
    try:
        return load_module(ROOT / "benchmarks" / "opcount_summary.py")
    finally:
        sys.path.remove(str(ROOT / "benchmarks"))


def summary(ks=10, counts=None):
    return {
        "models": {
            "toy": {
                "keyswitches": ks,
                "nonscalar_mults": 3,
                "counts": counts or {"rotate": 7, "mul": 3},
            }
        }
    }


class TestInvarianceCompare:
    def test_identical_summaries_pass(self, check_opcounts):
        assert check_opcounts.invariance_failures(summary(), summary()) == []

    def test_diverging_metric_named(self, check_opcounts):
        msgs = check_opcounts.invariance_failures(summary(10), summary(11))
        assert len(msgs) == 1
        assert "toy" in msgs[0] and "keyswitches: 10 != 11" in msgs[0]

    def test_diverging_counts_dict_caught(self, check_opcounts):
        msgs = check_opcounts.invariance_failures(
            summary(), summary(counts={"rotate": 8, "mul": 3})
        )
        assert len(msgs) == 1 and "counts" in msgs[0]

    def test_missing_model_reported_both_ways(self, check_opcounts):
        empty = {"models": {}}
        assert check_opcounts.invariance_failures(summary(), empty) == [
            "toy: missing from second summary"
        ]
        assert check_opcounts.invariance_failures(empty, summary()) == [
            "toy: missing from first summary"
        ]

    def test_cli_invariant_gate(self, check_opcounts, tmp_path):
        a, b, base = tmp_path / "a.json", tmp_path / "b.json", tmp_path / "base.json"
        a.write_text(json.dumps(summary()))
        base.write_text(json.dumps(summary()))
        b.write_text(json.dumps(summary(11)))
        ok = ["prog", str(a), "--baseline", str(base), "--invariant", str(a)]
        assert check_opcounts.main(ok) == 0
        bad = ["prog", str(a), "--baseline", str(base), "--invariant", str(b)]
        assert check_opcounts.main(bad) == 1


class _FakeCtx:
    def __init__(self):
        self.backend = SimpleNamespace(name="reference")

    def set_backend(self, name):
        self.backend = SimpleNamespace(name=name)


def fake_counting(keyswitches):
    return SimpleNamespace(
        keyswitch_count=keyswitches,
        nonscalar_mult_count=2,
        counts={"rotate": keyswitches - 2, "mul": 2},
    )


class TestVerifyBackendInvariance:
    def test_invariant_measure_passes_and_restores_backend(self, opcount_summary):
        ctx = _FakeCtx()
        base = opcount_summary.gate_metrics(fake_counting(10))
        opcount_summary.verify_backend_invariance(
            "toy", ctx, lambda: fake_counting(10), base
        )
        assert ctx.backend.name == "reference"

    def test_divergent_backend_fails_loudly(self, opcount_summary):
        ctx = _FakeCtx()
        base = opcount_summary.gate_metrics(fake_counting(10))

        def measure():
            # pretends the non-reference backend runs one extra keyswitch
            return fake_counting(10 if ctx.backend.name == "reference" else 11)

        with pytest.raises(SystemExit) as exc:
            opcount_summary.verify_backend_invariance("toy", ctx, measure, base)
        msg = str(exc.value)
        assert "toy" in msg and "vectorized" in msg and "backends.md" in msg
        assert ctx.backend.name == "reference"  # restored even on failure
