"""Tests for Pareto frontier, table formatting and depth profiling."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ParetoPoint, format_table, model_depth_profile, pareto_frontier
from repro.nn.models import small_cnn
from repro.paf import get_paf
from repro.paf.relu import maxpool_mult_depth, relu_mult_depth


class TestPareto:
    def test_dominated_points_removed(self):
        pts = [
            ParetoPoint("fast-bad", 1.0, 0.2),
            ParetoPoint("slow-good", 10.0, 0.9),
            ParetoPoint("dominated", 11.0, 0.8),
            ParetoPoint("mid", 5.0, 0.7),
        ]
        frontier = pareto_frontier(pts)
        names = [p.name for p in frontier]
        assert "dominated" not in names
        assert names == ["fast-bad", "mid", "slow-good"]  # latency ascending

    def test_single_point(self):
        pts = [ParetoPoint("only", 1.0, 0.5)]
        assert pareto_frontier(pts) == pts

    def test_identical_points_kept(self):
        pts = [ParetoPoint("a", 1.0, 0.5), ParetoPoint("b", 1.0, 0.5)]
        assert len(pareto_frontier(pts)) == 2

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_frontier_is_monotone(self, raw):
        pts = [ParetoPoint(str(i), lat, a) for i, (lat, a) in enumerate(raw)]
        frontier = pareto_frontier(pts)
        lats = [p.latency for p in frontier]
        accs = [p.accuracy for p in frontier]
        assert lats == sorted(lats)
        assert accs == sorted(accs)  # more latency must buy more accuracy


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.123456]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        out = format_table(["x"], [[0.00001], [12345.6]])
        assert "1e-05" in out
        assert "1.23e+04" in out


class TestDepthProfile:
    def test_small_cnn_profile(self):
        model = small_cnn(seed=0)
        paf = get_paf("f1g2")
        profile = model_depth_profile(
            model, paf, np.zeros((1, 3, 16, 16)), maxpool_kernel=2
        )
        assert profile["num_sites"] == 4
        expected = 3 * relu_mult_depth(paf) + maxpool_mult_depth(paf, 2)
        assert profile["total_depth"] == expected

    def test_deeper_paf_costs_more(self):
        model = small_cnn(seed=0)
        sample = np.zeros((1, 3, 16, 16))
        lo = model_depth_profile(model, get_paf("f1g2"), sample)["total_depth"]
        hi = model_depth_profile(model, get_paf("f1f1g1g1"), sample)["total_depth"]
        assert hi > lo
