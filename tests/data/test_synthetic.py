"""Synthetic dataset tests: determinism, structure, learnability signal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DataLoader, cifar10_like, imagenet_like, make_pattern_dataset


class TestPatternDataset:
    def test_shapes_and_labels(self):
        ds = make_pattern_dataset(5, 100, 40, image_size=12, seed=0)
        assert ds.x_train.shape == (100, 3, 12, 12)
        assert ds.x_val.shape == (40, 3, 12, 12)
        assert ds.y_train.shape == (100,)
        assert set(np.unique(ds.y_train)) <= set(range(5))
        assert ds.num_classes == 5
        assert ds.image_shape == (3, 12, 12)

    def test_deterministic(self):
        a = make_pattern_dataset(4, 50, 20, seed=7)
        b = make_pattern_dataset(4, 50, 20, seed=7)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_val, b.y_val)

    def test_different_seeds_differ(self):
        a = make_pattern_dataset(4, 50, 20, seed=1)
        b = make_pattern_dataset(4, 50, 20, seed=2)
        assert not np.allclose(a.x_train, b.x_train)

    def test_normalised_with_train_stats(self):
        ds = make_pattern_dataset(6, 400, 100, seed=0)
        np.testing.assert_allclose(ds.x_train.mean(axis=(0, 2, 3)), 0, atol=1e-10)
        np.testing.assert_allclose(ds.x_train.std(axis=(0, 2, 3)), 1, atol=1e-10)

    def test_classes_are_separable_by_template_matching(self):
        """A nearest-class-mean classifier must beat chance by a wide margin
        — the datasets must carry learnable class signal."""
        ds = make_pattern_dataset(4, 400, 200, image_size=12, noise=0.5, seed=0)
        means = np.stack(
            [ds.x_train[ds.y_train == c].mean(axis=0) for c in range(4)]
        )
        flat_val = ds.x_val.reshape(len(ds.x_val), -1)
        flat_means = means.reshape(4, -1)
        pred = ((flat_val[:, None, :] - flat_means[None]) ** 2).sum(-1).argmin(1)
        acc = (pred == ds.y_val).mean()
        assert acc > 0.5  # chance is 0.25

    def test_noise_knob_degrades_separability(self):
        def template_acc(noise):
            ds = make_pattern_dataset(4, 300, 150, image_size=12, noise=noise, seed=0)
            means = np.stack(
                [ds.x_train[ds.y_train == c].mean(axis=0) for c in range(4)]
            )
            flat_val = ds.x_val.reshape(len(ds.x_val), -1)
            flat_means = means.reshape(4, -1)
            pred = ((flat_val[:, None, :] - flat_means[None]) ** 2).sum(-1).argmin(1)
            return (pred == ds.y_val).mean()

        assert template_acc(0.2) > template_acc(3.0)

    def test_subsample(self):
        ds = make_pattern_dataset(4, 100, 50, seed=0)
        sub = ds.subsample(20, 10, seed=1)
        assert sub.n_train == 20 and sub.n_val == 10
        assert sub.num_classes == 4

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=3, deadline=None)
    def test_label_range_property(self, k):
        ds = make_pattern_dataset(k, 60, 20, image_size=8, seed=0)
        assert ds.y_train.min() >= 0 and ds.y_train.max() < k


class TestNamedDatasets:
    def test_cifar10_like_defaults(self):
        ds = cifar10_like(n_train=50, n_val=20)
        assert ds.num_classes == 10
        assert ds.name == "cifar10-like"

    def test_imagenet_like_is_harder(self):
        """More classes + lower SNR than cifar10-like (Sec. 5.4.4 premise)."""
        ds = imagenet_like(n_train=50, n_val=20, num_classes=20)
        assert ds.num_classes == 20
        assert ds.x_train.shape[-1] == 32


class TestDataLoader:
    def _data(self, n=50):
        rng = np.random.default_rng(0)
        return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 4, n)

    def test_batches_cover_everything(self):
        x, y = self._data(50)
        loader = DataLoader(x, y, batch_size=16, shuffle=False)
        seen = sum(len(yb) for _, yb in loader)
        assert seen == 50
        assert len(loader) == 4

    def test_shuffle_changes_order_not_content(self):
        x, y = self._data(32)
        loader = DataLoader(x, y, batch_size=32, shuffle=True, seed=0)
        xb, yb = next(iter(loader))
        assert not np.array_equal(yb, y)  # shuffled
        assert sorted(yb.tolist()) == sorted(y.tolist())

    def test_no_shuffle_preserves_order(self):
        x, y = self._data(20)
        loader = DataLoader(x, y, batch_size=20, shuffle=False)
        _, yb = next(iter(loader))
        np.testing.assert_array_equal(yb, y)

    def test_length_mismatch_rejected(self):
        x, y = self._data(10)
        with pytest.raises(ValueError):
            DataLoader(x, y[:5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((0, 1)), np.zeros(0))

    def test_augment_keeps_shape_and_changes_pixels(self):
        x, y = self._data(40)
        loader = DataLoader(x, y, batch_size=40, shuffle=False, augment=True, seed=0)
        xb, _ = next(iter(loader))
        assert xb.shape == x.shape
        assert not np.array_equal(xb, x)

    def test_augment_does_not_mutate_source(self):
        x, y = self._data(10)
        orig = x.copy()
        loader = DataLoader(x, y, batch_size=10, augment=True, seed=0)
        next(iter(loader))
        np.testing.assert_array_equal(x, orig)
