"""Benchmark-trend gate for CI: latency-model cost must not creep upward.

    python tools/check_bench_trend.py CURRENT.json
        [--history benchmarks/bench_history.jsonl] [--tolerance 0.10]
        [--append] [--opcounts OPCOUNTS.json]

``CURRENT.json`` is the record emitted by
``benchmarks/bench_resnet_forward.py --json``: per-model
``model_cost_seconds`` (measured HE-op counts × pinned reference per-op
timings — deterministic, so the gate tracks *plan* changes, not CI
machine jitter).  The history is a JSONL file of timestamped records;
each run compares against the **best (minimum) recorded cost** per
model and fails when the current cost exceeds it by more than
``--tolerance`` (default 10%).  Gating on the historical best — not the
previous run — closes the slow-creep loophole where repeated
sub-tolerance regressions each pass and compound; a *deliberate* cost
increase (a bigger model, an accepted trade) is recorded by reseeding
the history file, exactly like refreshing ``opcount_baseline.json``.

``--append`` writes the current record (plus the optional op-count gate
summary from ``--opcounts``) to the history afterwards — the CI job
appends on every push to main and republishes the grown history as an
artifact, so the trend survives across runs.  A failing check skips the
append: a regressed record must never become the baseline the next push
is compared against.  An empty or missing history seeds itself instead
of failing.  Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

GATED_METRIC = "model_cost_seconds"


def load_history(path: Path) -> list:
    """Parse the JSONL history; unparseable lines are skipped loudly."""
    records = []
    if not path.exists():
        return records
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            print(f"note: skipping malformed history line {lineno}", file=sys.stderr)
    return records


def best_costs(history: list) -> dict:
    """Per-model minimum recorded cost — the ratchet the gate holds."""
    best: dict = {}
    for record in history:
        for model, rec in record.get("models", {}).items():
            cost = rec.get(GATED_METRIC)
            if cost is None:
                continue
            if model not in best or cost < best[model]:
                best[model] = cost
    return best


def compare(history: list, current: dict, tolerance: float) -> tuple:
    """Returns ``(regressions, improvements, notes)`` message lists.

    Gates each model's current cost against its *best* historical record
    so sub-tolerance regressions cannot compound run over run.
    """
    regressions: list = []
    improvements: list = []
    notes: list = []
    best = best_costs(history)
    cur_models = current.get("models", {})
    for model, b in sorted(best.items()):
        cur = cur_models.get(model)
        if cur is None or cur.get(GATED_METRIC) is None:
            regressions.append(f"{model}.{GATED_METRIC}: missing from current run")
            continue
        c = cur[GATED_METRIC]
        if c > b * (1 + tolerance):
            regressions.append(
                f"{model}.{GATED_METRIC}: {c} vs best recorded {b} "
                f"(+{(c - b) / b:.1%} > {tolerance:.0%} tolerance)"
            )
        elif c < b:
            improvements.append(
                f"{model}.{GATED_METRIC}: best {b} -> {c} ({(c - b) / b:.1%})"
            )
    for model in sorted(set(cur_models) - set(best)):
        notes.append(f"{model}: first record (no trend yet)")
    return regressions, improvements, notes


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="JSON from bench_resnet_forward.py --json")
    parser.add_argument(
        "--history",
        default=str(
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "bench_history.jsonl"
        ),
    )
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument(
        "--append",
        action="store_true",
        help="record the current run in the history after the check",
    )
    parser.add_argument(
        "--opcounts",
        help="op-count gate JSON (opcount_summary.py --json) to ride along "
        "in the appended record",
    )
    args = parser.parse_args(argv[1:])

    with open(args.current) as fh:
        current = json.load(fh)
    history_path = Path(args.history)
    history = load_history(history_path)

    if not history:
        print("note: empty benchmark history — this run seeds the trend")
        regressions: list = []
    else:
        regressions, improvements, notes = compare(history, current, args.tolerance)
        for msg in notes:
            print(f"note: {msg}")
        for msg in improvements:
            print(f"improved: {msg}")
        for msg in regressions:
            print(f"REGRESSION: {msg}", file=sys.stderr)

    if args.append and regressions:
        # a regressed record must never become the next run's baseline —
        # appending it would green-light the regression on the next push
        print(
            "not appending: the regressed record would poison the trend "
            "baseline", file=sys.stderr,
        )
    elif args.append:
        record = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "models": current.get("models", {}),
        }
        if args.opcounts:
            with open(args.opcounts) as fh:
                record["opcounts"] = json.load(fh).get("models", {})
        history_path.parent.mkdir(parents=True, exist_ok=True)
        with open(history_path, "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"appended record #{len(history) + 1} to {history_path}")

    print(
        f"check_bench_trend: {len(history)} prior records, "
        f"{len(regressions)} regressions"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
