"""Convert a ``repro-trace-v1`` execution trace to Chrome trace format.

    python tools/trace_to_chrome.py TRACE.json [-o OUT.json]

Takes the JSON written by :meth:`repro.obs.Tracer.write_json` (or
``benchmarks/opcount_summary.py --trace-dir`` /
``bench_resnet_forward.py --trace``) and emits a Chrome
``traceEvents`` file loadable in ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev): one complete ("X") event per span, with the
span kind as the category and the HE-op deltas, ciphertext levels and
level slack in ``args`` for the inspector pane.  Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys


def to_chrome(trace: dict) -> dict:
    """Map repro-trace-v1 spans onto Chrome ``traceEvents``."""
    if trace.get("format") != "repro-trace-v1":
        raise ValueError(f"not a repro-trace-v1 trace: format={trace.get('format')!r}")
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": trace.get("model", "encrypted-forward")},
        }
    ]
    for sp in trace["spans"]:
        args = dict(sp.get("attrs", {}))
        if sp.get("ops"):
            args["ops"] = sp["ops"]
        for key in ("entry", "exit"):
            if sp.get(key):
                args[key] = sp[key]
        events.append(
            {
                "name": sp["name"],
                "cat": sp.get("kind", "span"),
                "ph": "X",
                "ts": sp["start_ms"] * 1000.0,       # Chrome wants microseconds
                "dur": sp["duration_ms"] * 1000.0,
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="repro-trace-v1 JSON file")
    parser.add_argument(
        "-o",
        "--out",
        help="output path (default: <trace>.chrome.json)",
    )
    args = parser.parse_args(argv[1:])
    with open(args.trace) as fh:
        trace = json.load(fh)
    chrome = to_chrome(trace)
    out = args.out or (args.trace.removesuffix(".json") + ".chrome.json")
    with open(out, "w") as fh:
        json.dump(chrome, fh, indent=2)
        fh.write("\n")
    print(f"trace_to_chrome: {len(chrome['traceEvents']) - 1} spans -> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
