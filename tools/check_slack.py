"""Level-slack regression gate for CI.

    python tools/check_slack.py TRACE.json [TRACE.json ...]
                                [--baseline benchmarks/slack_baseline.json]
                                [--update]

Reads the per-layer ``level_slack`` attributes from ``repro-trace-v1``
execution traces (levels remaining at layer exit beyond what the
downstream schedule still consumes) and compares them against the
checked-in baseline.  Slack is the repo's noise-budget headroom: a
layer whose slack *drops* means some change deepened the circuit ahead
of it — the kind of silent regression that later strands a model one
level short — so any drop below the pinned value fails CI.  Extra
slack passes with a reminder to refresh the baseline.

``--update`` rewrites the baseline from the given traces instead of
checking.  Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = str(
    Path(__file__).resolve().parent.parent / "benchmarks" / "slack_baseline.json"
)


def slack_of(trace: dict) -> tuple:
    """Returns ``(model, {layer name: level slack})`` from one trace."""
    model = trace.get("model", "unknown")
    layers = {
        sp["name"]: sp["attrs"]["level_slack"]
        for sp in trace.get("spans", [])
        if sp.get("kind") == "layer" and "level_slack" in sp.get("attrs", {})
    }
    return model, layers


def compare(baseline: dict, current: dict) -> tuple:
    """Returns ``(regressions, improvements)`` as message lists."""
    regressions: list = []
    improvements: list = []
    for model, base in sorted(baseline.get("models", {}).items()):
        cur = current.get(model)
        if cur is None:
            regressions.append(f"{model}: no trace for baselined model")
            continue
        for layer, b in sorted(base["layers"].items()):
            c = cur.get(layer)
            if c is None:
                regressions.append(f"{model}.{layer}: missing from current trace")
            elif c < b:
                regressions.append(f"{model}.{layer}: slack {b} -> {c}")
            elif c > b:
                improvements.append(f"{model}.{layer}: slack {b} -> {c}")
    return regressions, improvements


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="+", help="repro-trace-v1 JSON files")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from these traces instead of checking",
    )
    args = parser.parse_args(argv[1:])

    current: dict = {}
    for path in args.traces:
        with open(path) as fh:
            model, layers = slack_of(json.load(fh))
        if not layers:
            print(f"NO SLACK DATA: {path} has no layer spans", file=sys.stderr)
            return 1
        current[model] = layers

    if args.update:
        models = {
            model: {"layers": layers, "min_slack": min(layers.values())}
            for model, layers in sorted(current.items())
        }
        with open(args.baseline, "w") as fh:
            json.dump({"models": models}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"check_slack: baseline updated ({len(models)} models)")
        return 0

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    regressions, improvements = compare(baseline, current)
    for msg in improvements:
        print(f"improved: {msg}")
    if improvements:
        print(
            "slack improved — refresh benchmarks/slack_baseline.json "
            "(tools/check_slack.py --update) so the gate keeps the headroom"
        )
    for msg in regressions:
        print(f"REGRESSION: {msg}", file=sys.stderr)
    print(
        f"check_slack: {len(baseline.get('models', {}))} pinned models, "
        f"{len(regressions)} regressions"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
