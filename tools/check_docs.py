"""Internal-link checker for the markdown docs.

    python tools/check_docs.py [file-or-dir ...]

Defaults to ``docs/`` plus the top-level ``README.md`` and the package
READMEs. For every markdown link ``[text](target)``:

* external targets (``http://``, ``https://``, ``mailto:``) are skipped;
* relative file targets must exist on disk (resolved against the file's
  directory);
* ``#anchors`` must match a heading slug of the target file (GitHub
  slugging: lowercase, punctuation stripped, spaces to dashes).

Exit code 0 when every link resolves; 1 otherwise (used by the CI docs
job). Stdlib only.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

DEFAULT_TARGETS = ["docs", "README.md", "src/repro/experiments/README.md"]


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    slugs = set()
    counts: dict = {}
    for match in HEADING_RE.finditer(path.read_text(encoding="utf-8")):
        slug = slugify(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def markdown_files(targets) -> list:
    files = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md":
            files.append(path)
    return files


def check_file(path: Path) -> list:
    errors = []
    for match in LINK_RE.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        ref, _, anchor = target.partition("#")
        dest = (path.parent / ref).resolve() if ref else path.resolve()
        if not dest.exists():
            errors.append(f"{path}: broken link -> {target}")
            continue
        if anchor and dest.suffix == ".md":
            if anchor not in heading_slugs(dest):
                errors.append(f"{path}: missing anchor -> {target}")
    return errors


def main(argv) -> int:
    files = markdown_files(argv[1:] or DEFAULT_TARGETS)
    if not files:
        print("check_docs: no markdown files found", file=sys.stderr)
        return 1
    errors = [e for f in files for e in check_file(f)]
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_docs: {len(files)} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
