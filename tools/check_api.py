"""Public-API snapshot check for CI.

    PYTHONPATH=src python tools/check_api.py [--snapshot tools/api_snapshot.json]
                                             [--update]

Imports every public ``repro`` module, collects its public surface —
``__all__`` when declared, otherwise every public top-level name defined
in (or deliberately re-exported into) the module, plus the public
methods of every ``repro``-defined class — and diffs it against the
checked-in snapshot:

* a name present in the snapshot but missing from the import is a
  **removal** — an API break someone's code downstream will hit — and
  fails the check;
* a new name is an **addition** — fine, but the snapshot must be
  refreshed (``--update``) so the next accidental removal is caught.

Deprecation shims are part of the surface too (currently the loose
compile kwargs folded into ``CompilePolicy`` by ``compile_network`` /
``ModelArtifact.compile``): deleting a shim before its deprecation
cycle ends is exactly the removal this gate exists to catch — removing
one *at* end of cycle is a deliberate snapshot refresh (``--update``),
as with ``EncryptedMLP`` and ``ModelArtifact.compile_cnn`` /
``compile_resnet`` last cycle.  Needs the runtime deps
(numpy, networkx) since it imports the package for real — what users'
``import`` statements see is the surface that matters, not what the AST
suggests.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import pkgutil
import sys
import warnings
from pathlib import Path

DEFAULT_SNAPSHOT = str(Path(__file__).resolve().parent / "api_snapshot.json")


def public_modules() -> list:
    """Every importable ``repro`` module with no ``_private`` path part."""
    import repro

    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        names.append(info.name)
    return sorted(names)


def module_surface(module) -> list:
    """Sorted public names of one module, classes expanded one level."""
    if hasattr(module, "__all__"):
        names = sorted(set(module.__all__))
    else:
        names = []
        for name, obj in sorted(vars(module).items()):
            if name.startswith("_") or inspect.ismodule(obj):
                continue
            owner = getattr(obj, "__module__", None)
            # defined in repro (or re-exported between repro modules), or
            # a public module-level constant (owner-less data)
            if owner is None or owner.startswith("repro"):
                names.append(name)
    surface = []
    for name in names:
        surface.append(name)
        obj = getattr(module, name, None)
        if inspect.isclass(obj) and obj.__module__.startswith("repro"):
            for attr, member in sorted(vars(obj).items()):
                if attr.startswith("_"):
                    continue
                if callable(member) or isinstance(
                    member, (classmethod, staticmethod, property)
                ):
                    surface.append(f"{name}.{attr}")
    return surface


def collect() -> dict:
    surface = {}
    with warnings.catch_warnings():
        # importing the surface must not trip the -W error deprecation
        # leg, and module __getattr__ shims warn on touch by design
        warnings.simplefilter("ignore", DeprecationWarning)
        for name in public_modules():
            module = importlib.import_module(name)
            surface[name] = module_surface(module)
    return surface


def diff(snapshot: dict, current: dict) -> tuple:
    """Returns ``(removals, additions)`` as ``module: name`` strings."""
    removals: list = []
    additions: list = []
    for module, names in sorted(snapshot.items()):
        cur = current.get(module)
        if cur is None:
            removals.extend(f"{module}: {n}" for n in names)
            removals.append(f"{module}: (entire module)")
            continue
        cur_set = set(cur)
        removals.extend(f"{module}: {n}" for n in names if n not in cur_set)
    for module, names in sorted(current.items()):
        base = set(snapshot.get(module, []))
        additions.extend(f"{module}: {n}" for n in names if n not in base)
    return removals, additions


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshot", default=DEFAULT_SNAPSHOT)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the snapshot from the current surface instead of checking",
    )
    args = parser.parse_args(argv[1:])

    current = collect()
    if args.update:
        with open(args.snapshot, "w") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        total = sum(len(v) for v in current.values())
        print(f"check_api: snapshot updated ({len(current)} modules, {total} names)")
        return 0

    with open(args.snapshot) as fh:
        snapshot = json.load(fh)
    removals, additions = diff(snapshot, current)
    for msg in additions:
        print(f"added: {msg}")
    if additions:
        print(
            "new public surface — refresh the snapshot "
            "(PYTHONPATH=src python tools/check_api.py --update) so future "
            "removals of these names are caught"
        )
    for msg in removals:
        print(f"REMOVED: {msg}", file=sys.stderr)
    if removals:
        print(
            "public API surface shrank — an intentional removal (e.g. a shim "
            "finishing its deprecation cycle) is recorded with --update",
            file=sys.stderr,
        )
    print(
        f"check_api: {len(snapshot)} snapshotted modules, "
        f"{len(removals)} removals, {len(additions)} additions"
    )
    return 1 if (removals or additions) else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
