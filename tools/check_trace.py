"""Schema and invariant check for ``repro-trace-v1`` execution traces.

    python tools/check_trace.py TRACE.json [TRACE.json ...]

Validates the traces CI produces from the toy models
(``benchmarks/opcount_summary.py --trace-dir``) before uploading them
as artifacts:

* **schema** — format tag, spans flattened depth-first with ``id ==
  index``, every parent id points at an earlier span, required keys
  present with sane types;
* **timing** — non-negative durations, every child's interval nested
  inside its parent's;
* **op accounting** — a parent's HE-op deltas cover the sum of its
  children's (spans accumulate ops while open), and on ``forward`` /
  ``forward_shards`` roots the per-layer deltas add up *exactly* to the
  root's totals — the tracer's books must balance against the
  ``CountingEvaluator`` aggregate;
* **levels** — rescaling only consumes modulus levels, so no span may
  exit at a higher level than it entered.  The one legitimate exception
  is a level refresh: spans named ``refresh:*`` (and any span containing
  one, which inherits the raise) may exit higher; the strict rule holds
  everywhere else.

Exit 1 with one line per violation.  Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys

REQUIRED_KEYS = ("id", "parent", "name", "kind", "start_ms", "duration_ms", "ops")

#: spans nested a few microseconds outside the parent are clock noise
TIME_EPS_MS = 1e-3


def _sum_ops(spans: list) -> dict:
    total: dict = {}
    for sp in spans:
        for op, n in sp.get("ops", {}).items():
            total[op] = total.get(op, 0) + n
    return total


def check_trace(trace: dict, label: str = "trace") -> list:
    """Returns a list of violation messages (empty when the trace is valid)."""
    errors: list = []

    def err(msg: str) -> None:
        errors.append(f"{label}: {msg}")

    if trace.get("format") != "repro-trace-v1":
        err(f"bad format tag {trace.get('format')!r}")
        return errors
    spans = trace.get("spans")
    if not isinstance(spans, list) or not spans:
        err("no spans")
        return errors

    for i, sp in enumerate(spans):
        for key in REQUIRED_KEYS:
            if key not in sp:
                err(f"span {i} missing key {key!r}")
        if sp.get("id") != i:
            err(f"span {i}: id {sp.get('id')} != position {i}")
        parent = sp.get("parent")
        if parent is not None and not (
            isinstance(parent, int) and 0 <= parent < i
        ):
            err(f"span {i} ({sp.get('name')}): parent {parent!r} not an earlier span")
        if sp.get("duration_ms", 0) < 0:
            err(f"span {i} ({sp.get('name')}): negative duration")
    if errors:
        return errors  # structural problems poison the checks below

    children: dict = {i: [] for i in range(len(spans))}
    for sp in spans:
        if sp["parent"] is not None:
            children[sp["parent"]].append(sp)

    # spans allowed to raise the chain level: a refresh itself, plus every
    # ancestor enclosing one (the raise propagates to their exit levels)
    refreshing: set = set()
    for sp in spans:
        if str(sp["name"]).startswith("refresh:"):
            i = sp["id"]
            while i is not None:
                refreshing.add(i)
                i = spans[i]["parent"]

    for sp in spans:
        # child intervals nest inside the parent's
        for child in children[sp["id"]]:
            if child["start_ms"] < sp["start_ms"] - TIME_EPS_MS or (
                child["start_ms"] + child["duration_ms"]
                > sp["start_ms"] + sp["duration_ms"] + TIME_EPS_MS
            ):
                errors.append(
                    f"{label}: span {child['id']} ({child['name']}) escapes "
                    f"parent {sp['id']} ({sp['name']}) interval"
                )
        # parent op deltas cover the children's
        child_ops = _sum_ops(children[sp["id"]])
        for op, n in child_ops.items():
            if sp["ops"].get(op, 0) < n:
                errors.append(
                    f"{label}: span {sp['id']} ({sp['name']}) ops[{op}]="
                    f"{sp['ops'].get(op, 0)} < children's {n}"
                )
        # rescaling only ever consumes levels — refreshes excepted
        entry, exit_ = sp.get("entry"), sp.get("exit")
        if sp["id"] not in refreshing \
                and entry and exit_ and exit_["level"] > entry["level"]:
            errors.append(
                f"{label}: span {sp['id']} ({sp['name']}) exits at level "
                f"{exit_['level']} above entry level {entry['level']}"
            )
        # on a forward root, layer deltas must balance exactly
        if sp["parent"] is None and sp["kind"] == "forward":
            layers = [c for c in children[sp["id"]] if c["kind"] == "layer"]
            layer_ops = _sum_ops(layers)
            if layer_ops != sp["ops"]:
                errors.append(
                    f"{label}: root {sp['name']} ops {sp['ops']} != "
                    f"summed layer ops {layer_ops}"
                )
    return errors


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="+", help="repro-trace-v1 JSON files")
    args = parser.parse_args(argv[1:])
    failures = 0
    for path in args.traces:
        with open(path) as fh:
            trace = json.load(fh)
        errors = check_trace(trace, label=path)
        for msg in errors:
            print(f"INVALID: {msg}", file=sys.stderr)
        if errors:
            failures += 1
        else:
            n_layers = sum(1 for s in trace["spans"] if s["kind"] == "layer")
            print(f"{path}: ok ({len(trace['spans'])} spans, {n_layers} layers)")
    print(f"check_trace: {len(args.traces)} traces, {failures} invalid")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
