"""HE-op-count regression gate for CI.

    python tools/check_opcounts.py CURRENT.json [--baseline benchmarks/opcount_baseline.json]
                                   [--tolerance 0.02] [--invariant OTHER.json]

Compares the per-model gate metrics emitted by
``benchmarks/opcount_summary.py --json`` against the checked-in
baseline.  The gated metrics are the two hot-path cost currencies:

* ``keyswitches`` — Galois/relinearisation applications (the dominant
  wall-clock cost of an encrypted forward);
* ``nonscalar_mults`` — ciphertext×ciphertext multiplications (the
  polynomial-evaluation cost the Paterson–Stockmeyer rewrite minimises).

The job fails when either metric regresses by more than ``--tolerance``
(default 2%) on any pinned model, and also when a baselined model
disappears from the current run.  Improvements pass with a reminder to
refresh the baseline so the gate keeps ratcheting downward.  Stdlib
only.

``--invariant OTHER.json`` additionally requires the two summaries'
``models`` sections to be byte-identical once canonicalised — the
backend-invariance gate: a summary measured under one kernel backend
and a summary measured under another must report exactly the same op
counts, because backends may only change how residue arithmetic
executes, never which HE ops run (see docs/backends.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GATED_METRICS = ("keyswitches", "nonscalar_mults")


def compare(baseline: dict, current: dict, tolerance: float) -> tuple:
    """Returns ``(regressions, improvements, notes)`` as message lists."""
    regressions: list = []
    improvements: list = []
    notes: list = []
    base_models = baseline.get("models", {})
    cur_models = current.get("models", {})
    for model, base in sorted(base_models.items()):
        cur = cur_models.get(model)
        if cur is None:
            regressions.append(f"{model}: missing from current run")
            continue
        for metric in GATED_METRICS:
            if metric not in base:
                continue
            b, c = base[metric], cur.get(metric)
            if c is None:
                regressions.append(f"{model}.{metric}: missing from current run")
            elif c > b * (1 + tolerance):
                regressions.append(
                    f"{model}.{metric}: {b} -> {c} "
                    f"(+{(c - b) / b:.1%} > {tolerance:.0%} tolerance)"
                )
            elif c < b:
                improvements.append(f"{model}.{metric}: {b} -> {c} ({(c - b) / b:.1%})")
    for model in sorted(set(cur_models) - set(base_models)):
        notes.append(f"{model}: not in baseline (add it to pin its op counts)")
    return regressions, improvements, notes


def invariance_failures(current: dict, other: dict) -> list:
    """Byte-compare two summaries' ``models`` sections.

    Returns one message per divergence; empty means byte-identical.
    """
    cur_models = current.get("models", {})
    oth_models = other.get("models", {})
    failures: list = []
    for model in sorted(set(cur_models) - set(oth_models)):
        failures.append(f"{model}: missing from second summary")
    for model in sorted(set(oth_models) - set(cur_models)):
        failures.append(f"{model}: missing from first summary")
    for model in sorted(set(cur_models) & set(oth_models)):
        a = json.dumps(cur_models[model], sort_keys=True).encode()
        b = json.dumps(oth_models[model], sort_keys=True).encode()
        if a != b:
            cur, oth = cur_models[model], oth_models[model]
            keys = sorted(set(cur) | set(oth))
            diffs = [
                f"{k}: {cur.get(k)!r} != {oth.get(k)!r}"
                for k in keys
                if cur.get(k) != oth.get(k)
            ]
            failures.append(f"{model}: {'; '.join(diffs)}")
    return failures


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="JSON from opcount_summary.py --json")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent
                    / "benchmarks" / "opcount_baseline.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.02)
    parser.add_argument(
        "--invariant",
        metavar="OTHER.json",
        help="second summary that must report byte-identical op counts "
        "(the kernel-backend invariance gate)",
    )
    args = parser.parse_args(argv[1:])

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    regressions, improvements, notes = compare(baseline, current, args.tolerance)
    if args.invariant:
        with open(args.invariant) as fh:
            other = json.load(fh)
        for msg in invariance_failures(current, other):
            regressions.append(
                f"backend invariance broken — op counts must be identical "
                f"under every kernel backend (docs/backends.md): {msg}"
            )
    for msg in notes:
        print(f"note: {msg}")
    for msg in improvements:
        print(f"improved: {msg}")
    if improvements:
        print(
            "op counts improved — refresh benchmarks/opcount_baseline.json "
            "(opcount_summary.py --json) so the gate ratchets down"
        )
    for msg in regressions:
        print(f"REGRESSION: {msg}", file=sys.stderr)
    print(
        f"check_opcounts: {len(baseline.get('models', {}))} pinned models, "
        f"{len(regressions)} regressions"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
