"""End-to-end private inference (the paper's Fig. 2 pipeline).

A client encrypts an input; the server runs a SMART-PAF-approximated MLP
entirely on ciphertexts (Halevi-Shoup linear layers + PAF activations);
the client decrypts the logits.  No plaintext data or activations ever
exist server-side.

Run:  python examples/private_inference.py
"""

import time

from repro.ckks import CkksParams
from repro.core import SmartPAF, SmartPAFConfig, pretrain
from repro.data.synthetic import Dataset, make_pattern_dataset
from repro.fhe import compile_mlp
from repro.nn import Tensor, no_grad
from repro.nn.models import mlp
from repro.paf import get_paf


def main() -> None:
    # Small flattened-image task so the encrypted matvec stays snappy.
    img = make_pattern_dataset(4, 300, 60, image_size=4, noise=0.4, seed=0)
    x_train = img.x_train.reshape(len(img.x_train), -1)   # 48 features
    x_val = img.x_val.reshape(len(img.x_val), -1)
    ds = Dataset(x_train, img.y_train, x_val, img.y_val, 4, "flat-patterns")

    model = mlp(x_train.shape[1], hidden=(12,), num_classes=4, seed=0)
    acc = pretrain(model, ds, epochs=6, seed=0)
    print(f"plaintext MLP accuracy: {acc:.3f}")

    # Replace the ReLU with a trainable PAF and fine-tune (SMART-PAF).
    runner = SmartPAF(
        lambda: get_paf("f1f1g1g1"),
        SmartPAFConfig.quick(epochs_per_group=2, max_groups_per_step=1),
    )
    result = runner.fit(model, ds)
    print(f"PAF-approximated accuracy: DS {result.ds_accuracy:.3f}, SS {result.ss_accuracy:.3f}")

    # Compile to CKKS. Depth: one linear (1) + PAF ReLU (8+1) + linear (1).
    print("compiling to CKKS ...")
    t0 = time.time()
    enc = compile_mlp(model, CkksParams(n=2048, scale_bits=25, depth=12), seed=0)
    print(f"  compiled in {time.time() - t0:.1f}s "
          f"(ring N={enc.ctx.n}, {len(enc.keys.galois)} rotation keys)")

    model.eval()
    with no_grad():
        plain_pred = model(Tensor(x_val[:5])).data.argmax(axis=1)
    hits, agree = 0, 0
    t0 = time.time()
    for i in range(5):
        pred = enc.predict(x_val[i], num_classes=4)
        hits += int(pred == ds.y_val[i])
        agree += int(pred == plain_pred[i])
        print(f"  sample {i}: encrypted pred={pred} "
              f"plaintext pred={plain_pred[i]} true={ds.y_val[i]}")
    dt = (time.time() - t0) / 5
    print(f"encrypted inference: {hits}/5 correct, {agree}/5 agree with "
          f"plaintext, {dt:.2f}s/sample")


if __name__ == "__main__":
    main()
