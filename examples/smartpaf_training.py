"""Full SMART-PAF pipeline on a CNN: CT + PA + AT + DS/SS (Fig. 6).

Pretrains a CNN on the synthetic CIFAR-10 stand-in, replaces every ReLU
and MaxPooling with a low-degree PAF through the scheduling framework, and
reports the Tab.-3-style accuracy rows.

Run:  python examples/smartpaf_training.py           (small CNN, ~1 min)
      REPRO_MODEL=resnet18 python examples/smartpaf_training.py
"""

import os

from repro.core import SmartPAF, SmartPAFConfig, pretrain, scale_summary
from repro.data import cifar10_like, imagenet_like
from repro.nn.models import resnet18, small_cnn
from repro.paf import get_paf


def main() -> None:
    arch = os.environ.get("REPRO_MODEL", "small_cnn")
    if arch == "resnet18":
        ds = imagenet_like(n_train=700, n_val=250, image_size=24, num_classes=10, seed=0)
        model = resnet18(num_classes=10, base_width=6, seed=1)
        epochs = 6
    else:
        ds = cifar10_like(n_train=600, n_val=200, image_size=16, seed=0)
        model = small_cnn(num_classes=10, base_width=8, input_size=16, seed=1)
        epochs = 4

    print(f"pretraining {arch} on {ds.name} ...")
    base_acc = pretrain(model, ds, epochs=epochs, seed=0)
    print(f"  original accuracy: {base_acc:.3f}")

    form = "f1f1g1g1"  # the paper's 14-degree sweet spot
    config = SmartPAFConfig.quick(epochs_per_group=2, max_groups_per_step=2)
    print(f"\nrunning SMART-PAF with {form}: {config.label()}")
    runner = SmartPAF(lambda: get_paf(form), config)
    result = runner.fit(model, ds)

    print(f"  DS accuracy (training view):    {result.ds_accuracy:.3f}")
    print(f"  SS accuracy (HE-deployable):    {result.ss_accuracy:.3f}")
    print(f"  steps: {[s['step'] for s in result.schedule.steps]}")
    print("\nper-layer static scales (the SS auxiliary values):")
    for name, info in scale_summary(result.model).items():
        print(f"  {name:24s} scale={info['scale']:.3f}")
    print("\nper-layer tuned coefficients (appendix-B reproduction):")
    from repro.core import export_coefficients, format_appendix_table

    doc = export_coefficients(result.model)
    print(format_appendix_table(doc, component_index=0))


if __name__ == "__main__":
    main()
