"""Multiplication-depth analysis (the paper's Appendix C, Tab. 8 / Fig. 10).

Prints the symbolic depth schedule of f1 ∘ g2, verifies measured CKKS level
consumption against the analytic formula for all registry PAFs, and shows
the per-model depth budget of a full PAF-approximated ResNet-18.

Run:  python examples/depth_analysis.py
"""

import numpy as np

from repro.analysis.graph import model_depth_profile
from repro.experiments.appendix_depth import print_appendix_depth
from repro.nn.models import resnet18
from repro.paf import get_paf


def main() -> None:
    print(print_appendix_depth())

    print("\nDepth budget of a fully PAF-approximated ResNet-18 (f1^2 o g1^2):")
    model = resnet18(base_width=4, seed=0)
    profile = model_depth_profile(
        model, get_paf("f1f1g1g1"), np.zeros((1, 3, 32, 32)), maxpool_kernel=3
    )
    for name, depth in list(profile["per_site"].items())[:5]:
        print(f"  {name:18s} depth {depth}")
    print(f"  ... ({profile['num_sites']} sites)")
    print(
        f"  total multiplicative depth along the chain: {profile['total_depth']} "
        "(the level/bootstrapping budget an FHE accelerator must provision)"
    )


if __name__ == "__main__":
    main()
