"""Batched encrypted-inference serving: many clients, one ciphertext.

Trains the same tiny PAF-MLP as ``private_inference.py``, then serves a
burst of client requests through ``repro.serve``: requests are packed
into disjoint SIMD slot blocks of a single ciphertext, the artifact's
encoding caches eliminate steady-state plaintext encoding, and the
metrics report throughput / latency / homomorphic-op counts.

Run:  python examples/batched_serving.py
"""

import time


from repro.ckks import CkksParams
from repro.core import SmartPAF, SmartPAFConfig, pretrain
from repro.data.synthetic import Dataset, make_pattern_dataset
from repro.fhe import compile_mlp
from repro.nn.models import mlp
from repro.paf import get_paf
from repro.serve import InferenceServer, ModelArtifact


def main() -> None:
    img = make_pattern_dataset(4, 300, 60, image_size=4, noise=0.4, seed=0)
    x_train = img.x_train.reshape(len(img.x_train), -1)   # 48 features
    x_val = img.x_val.reshape(len(img.x_val), -1)
    ds = Dataset(x_train, img.y_train, x_val, img.y_val, 4, "flat-patterns")

    model = mlp(x_train.shape[1], hidden=(12,), num_classes=4, seed=0)
    pretrain(model, ds, epochs=6, seed=0)
    runner = SmartPAF(
        lambda: get_paf("f1g2"),
        SmartPAFConfig.quick(epochs_per_group=2, max_groups_per_step=1),
    )
    runner.fit(model, ds)

    print("compiling + building serving artifact ...")
    enc = compile_mlp(model, CkksParams(n=2048, scale_bits=25, depth=9), seed=0)
    print(
        f"  SIMD capacity: {enc.max_batch} requests/ciphertext "
        f"({enc.ctx.slots} slots / {enc.block_stride} per request)"
    )
    artifact = ModelArtifact(enc).warm()
    print(f"  encoding cache primed: {artifact.stats()['entries']} plaintexts")

    n_req = min(8, enc.max_batch)

    # sequential baseline
    t0 = time.perf_counter()
    seq_preds = [enc.predict(x, num_classes=4) for x in x_val[:n_req]]
    t_seq = time.perf_counter() - t0
    print(f"\nsequential: {n_req} requests in {t_seq:.1f}s "
          f"({n_req / t_seq:.2f} req/s)")

    # batched server
    with InferenceServer(
        artifact, num_classes=4, max_batch_size=n_req, max_wait_ms=50,
        instrument=True, warm=False,
    ) as srv:
        t0 = time.perf_counter()
        results = srv.predict_many(x_val[:n_req])
        t_batch = time.perf_counter() - t0
    print(f"batched:    {n_req} requests in {t_batch:.1f}s "
          f"({n_req / t_batch:.2f} req/s) -> {t_seq / t_batch:.1f}x speedup")

    agree = sum(r.prediction == p for r, p in zip(results, seq_preds))
    print(f"predictions agree with sequential: {agree}/{n_req}")
    print("\nserver metrics:")
    print(srv.metrics.format())


if __name__ == "__main__":
    main()
