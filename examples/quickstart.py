"""Quickstart: approximate sign/ReLU with a composite PAF and run it
under CKKS homomorphic encryption.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.ckks import CkksContext, CkksEvaluator, CkksParams, eval_paf_relu, keygen
from repro.ckks.security import security_report
from repro.paf import get_paf, paper_pafs
from repro.paf.relu import paf_relu, relu_mult_depth


def main() -> None:
    # --- 1. plaintext: the six PAF forms of the paper's Tab. 2 ---------
    print("PAF forms (Tab. 2):")
    for paf in paper_pafs(include_alpha10=True):
        x = np.linspace(0.2, 1.0, 500)
        err = np.max(np.abs(paf(x) - 1.0))
        print(
            f"  {paf.name:12s} degree={paf.reported_degree:3d} "
            f"depth={paf.mult_depth:2d}  max |sign err| on [0.2,1] = {err:.2e}"
        )

    # --- 2. PAF-ReLU on plaintext ---------------------------------------
    paf = get_paf("f1f1g1g1")
    x = np.linspace(-1, 1, 9)
    print("\nPAF-ReLU vs exact ReLU (f1^2 o g1^2):")
    print("  x       :", np.round(x, 3))
    print("  paf relu:", np.round(paf_relu(x, paf), 3))
    print("  relu    :", np.round(np.maximum(x, 0), 3))

    # --- 3. the same ReLU on an encrypted vector ------------------------
    params = CkksParams(n=1024, scale_bits=25, depth=relu_mult_depth(paf))
    ctx = CkksContext(params)
    print(f"\nCKKS context: {ctx}")
    print(f"  security: {security_report(ctx).message}")
    keys = keygen(ctx, seed=0)
    ev = CkksEvaluator(ctx, keys)

    rng = np.random.default_rng(0)
    data = rng.uniform(-1, 1, ctx.slots)
    ct = ev.encrypt(data)
    out = eval_paf_relu(ev, ct, paf)
    got = ev.decrypt(out)
    ref = paf_relu(data, paf)
    print(f"  encrypted ReLU max error vs plaintext PAF: {np.max(np.abs(got - ref)):.2e}")
    print(f"  levels consumed: {ctx.max_level - out.level} (= depth {paf.mult_depth} + 1)")


if __name__ == "__main__":
    main()
