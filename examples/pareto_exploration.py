"""Explore the latency-accuracy trade-off space (the paper's Fig. 1).

Measures encrypted-ReLU latency for every PAF form on the CKKS simulator,
runs the SMART-PAF accuracy pipeline per form, and prints the Pareto
frontier with an ASCII scatter.

Run:  python examples/pareto_exploration.py
"""


from repro.experiments.table4 import print_table4, run_fig1, run_table4


def ascii_scatter(points, width: int = 60, height: int = 14) -> str:
    lats = [p.latency for p in points]
    accs = [p.accuracy for p in points]
    lo_l, hi_l = min(lats), max(lats)
    lo_a, hi_a = min(accs), max(accs)
    grid = [[" "] * width for _ in range(height)]
    for i, p in enumerate(points):
        x = int((p.latency - lo_l) / max(hi_l - lo_l, 1e-9) * (width - 1))
        y = int((p.accuracy - lo_a) / max(hi_a - lo_a, 1e-9) * (height - 1))
        grid[height - 1 - y][x] = str(i)
    legend = "\n".join(
        f"  {i}: {p.name} (lat {p.latency:.3f}s, acc {p.accuracy:.3f})"
        for i, p in enumerate(points)
    )
    axis = f"accuracy {lo_a:.2f}..{hi_a:.2f} (up), latency {lo_l:.3f}..{hi_l:.3f}s (right)"
    return "\n".join("".join(row) for row in grid) + "\n" + axis + "\n" + legend


def main() -> None:
    print("measuring latency + accuracy per PAF form (quick scale) ...")
    t4 = run_table4(seed=0, with_accuracy=True)
    print()
    print(print_table4(t4))
    fig1 = run_fig1(t4)
    print("\nPareto frontier:",
          ", ".join(p.name for p in fig1["frontier"]))
    print("\n" + ascii_scatter(fig1["points"]))


if __name__ == "__main__":
    main()
