"""Legacy setup shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 517
editable installs (which require ``bdist_wheel``) fail.  This shim lets
``python setup.py develop`` work there; normal environments should use
``pip install -e .``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
