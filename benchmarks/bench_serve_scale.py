"""Multi-tenant serving scale: per-request model cost + requests/sec/core.

    PYTHONPATH=src python benchmarks/bench_serve_scale.py [--json PATH]
        [--base BENCH.json] [--skip-wall] [--mlp-requests N] [--resnet-requests N]

The serving half of the CI trend gate.  Two tenants with *distinct*
client keys (via :class:`repro.serve.ClientKeyRegistry`) submit mixed
traffic — the toy MLP and the channel-sharded toy ResNet — into one
:class:`~repro.serve.InferenceServer` worker pool, exercising the whole
multi-tenant path: per-group batching, per-client evaluators over shared
encoding caches, and thread-scheduled shard blocks.

Two kinds of numbers, following ``bench_resnet_forward``'s split:

* ``model_cost_seconds`` (**gated**) — the amortised per-request cost of
  a full SIMD batch: measured HE-op counts of one batched forward at
  capacity, × pinned reference per-op timings
  (:data:`~repro.fhe.latency.REFERENCE_MICROS`), ÷ batch size.
  Deterministic for a given compile, so the ratchet tracks plan/packing
  changes, not machine jitter.  Recorded per served model
  (``serve_mlp_per_request``, ``serve_resnet_per_request``).
* ``requests_per_sec`` / ``requests_per_sec_per_core`` (informational,
  never gated) — measured wall throughput of the mixed two-tenant burst
  on this machine, normalised by ``os.cpu_count()``.

``--base`` merges another benchmark record (e.g. ``bench_resnet.json``)
into the output, so one combined ``current.json`` satisfies
``tools/check_bench_trend.py``'s rule that every model in the history
must be present in the current run.
"""

import argparse
import json
import os
import threading
import time

import numpy as np

from repro.ckks.instrumentation import CountingEvaluator
from repro.fhe.latency import REFERENCE_MICROS, cost_from_counts
from repro.fhe.toy import compiled_toy, compiled_toy_resnet
from repro.serve import (
    ClientKeyRegistry,
    InferenceServer,
    ModelArtifact,
    make_executor,
)

TENANTS = ("tenant_a", "tenant_b")


def per_request_cost(art: ModelArtifact) -> dict:
    """Deterministic amortised cost of one full-capacity batch.

    Counts one batched forward at the model's SIMD capacity on a serial
    :class:`CountingEvaluator` (executors undercount — see
    :mod:`repro.serve.executor`) and divides by the batch size.
    """
    enc = art.model
    ev = CountingEvaluator(enc.ev)
    batch = enc.max_batch
    if enc.sharded:
        dim = sum(enc.input_splits or [enc.size])
        cts = enc.encrypt_batch_shards([np.zeros(dim)] * batch, ev=ev)
        ev.reset()
        out = enc.forward_shards(cts, encoded=art.encoded_linear, ev=ev)[0]
    else:
        ct = enc.encrypt_batch([np.zeros(enc.size)] * batch, ev=ev)
        ev.reset()
        out = enc.forward(ct, encoded=art.encoded_linear, ev=ev)
    enc.decrypt_logits(out, 3, batch=batch, ev=ev)
    cost = cost_from_counts(ev.counts, REFERENCE_MICROS)
    return {
        "model_cost_seconds": round(cost / batch, 4),
        "batch": batch,
        "keyswitches": ev.keyswitch_count,
        "nonscalar_mults": ev.nonscalar_mult_count,
        "counts": {k: int(v) for k, v in sorted(ev.counts.items())},
    }


def measure_throughput(
    artifacts: dict, mlp_requests: int, resnet_requests: int
) -> dict:
    """Wall clock of a mixed two-tenant burst through one worker pool."""
    registry = ClientKeyRegistry()
    with make_executor("thread") as shard_executor:
        srv = InferenceServer(
            artifacts,
            num_classes=3,
            max_wait_ms=25.0,
            num_workers=2,
            key_registry=registry,
            shard_executor=shard_executor,
        )
        for tenant in TENANTS:
            srv.register_client(tenant)
        rng = np.random.default_rng(0)
        resnet_dim = sum(artifacts["toy_resnet"].model.input_splits or [64])
        plans = []  # (tenant, model, inputs)
        for tenant in TENANTS:
            plans.append(
                (tenant, "toy_mlp", [rng.normal(size=8) for _ in range(mlp_requests)])
            )
            plans.append(
                (
                    tenant,
                    "toy_resnet",
                    [rng.normal(size=resnet_dim) for _ in range(resnet_requests)],
                )
            )
        with srv:
            # warm-up: derive each tenant's chain + per-worker evaluators
            # outside the timed window (one-time serving setup, not
            # steady-state throughput)
            for tenant, model, xs in plans:
                srv.predict(xs[0], client_id=tenant, model=model, timeout=600)

            def burst(tenant, model, xs):
                srv.predict_many(
                    xs, client_id=tenant, model=model, timeout=600
                )

            threads = [
                threading.Thread(target=burst, args=plan) for plan in plans
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
    total = sum(len(xs) for _, _, xs in plans)
    cores = os.cpu_count() or 1
    snapshot = srv.metrics.snapshot()
    assert snapshot["errors"] == {}, f"serving errors during bench: {snapshot['errors']}"
    return {
        "tenants": len(TENANTS),
        "requests": total,
        "wall_seconds": round(wall, 3),
        "requests_per_sec": round(total / wall, 3),
        "requests_per_sec_per_core": round(total / wall / cores, 4),
        "cores": cores,
        "mean_batch_size": round(snapshot["mean_batch_size"], 2),
    }


def bench(
    skip_wall: bool = False, mlp_requests: int = 16, resnet_requests: int = 2
) -> dict:
    artifacts = {
        "toy_mlp": ModelArtifact(compiled_toy()).warm(),
        "toy_resnet": ModelArtifact(compiled_toy_resnet()).warm(),
    }
    records = {
        "serve_mlp_per_request": per_request_cost(artifacts["toy_mlp"]),
        "serve_resnet_per_request": per_request_cost(artifacts["toy_resnet"]),
    }
    if not skip_wall:
        throughput = measure_throughput(artifacts, mlp_requests, resnet_requests)
        for rec in records.values():
            rec.update(throughput)
    return {"models": records}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", dest="json_path", help="write the record here")
    parser.add_argument(
        "--base",
        help="merge this benchmark record's models into the output "
        "(one combined file for the trend gate)",
    )
    parser.add_argument(
        "--skip-wall",
        action="store_true",
        help="skip the served burst (deterministic model cost only)",
    )
    parser.add_argument("--mlp-requests", type=int, default=16)
    parser.add_argument("--resnet-requests", type=int, default=2)
    args = parser.parse_args()
    result = bench(
        skip_wall=args.skip_wall,
        mlp_requests=args.mlp_requests,
        resnet_requests=args.resnet_requests,
    )
    if args.base:
        with open(args.base) as fh:
            base = json.load(fh)
        overlap = set(base.get("models", {})) & set(result["models"])
        if overlap:
            raise SystemExit(f"--base record redefines {sorted(overlap)}")
        result["models"].update(base["models"])
    for model, rec in sorted(result["models"].items()):
        line = f"{model}: model_cost={rec.get('model_cost_seconds')}s"
        if "requests_per_sec_per_core" in rec:
            line += (
                f" tenants={rec['tenants']} requests={rec['requests']}"
                f" wall={rec['wall_seconds']}s"
                f" req/s={rec['requests_per_sec']}"
                f" req/s/core={rec['requests_per_sec_per_core']}"
            )
        print(line)
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
