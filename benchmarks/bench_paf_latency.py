"""Per-PAF encrypted-ReLU latency (the §5.1 latency evaluation) and the
analytic cost model cross-check."""

import pytest

from repro.analysis.tables import format_table
from repro.ckks import CkksParams
from repro.fhe import analytic_relu_cost, measure_op_micros, measure_relu_latency, paf_op_counts
from repro.paf import get_paf, minimax_alpha10_deg27

PARAMS = CkksParams(n=2048, scale_bits=25, depth=12)
FORMS = ["f1f1g1g1", "alpha7", "f2g3", "f2g2", "f1g2"]


@pytest.mark.parametrize("form", FORMS)
def bench_paf_relu_latency(benchmark, form):
    paf = get_paf(form)
    result = benchmark.pedantic(
        lambda: measure_relu_latency(paf, PARAMS), rounds=1, iterations=1
    )
    assert result.levels_consumed == paf.mult_depth + 1


def bench_paf_cost_model(benchmark, artifact):
    micros = benchmark.pedantic(
        lambda: measure_op_micros(PARAMS), rounds=1, iterations=1
    )
    rows = []
    pafs = [minimax_alpha10_deg27()] + [get_paf(f) for f in FORMS]
    for paf in pafs:
        counts = paf_op_counts(paf)
        rows.append(
            [
                paf.name,
                counts["ct_mult"],
                counts["pt_mult"],
                counts["rescale"],
                analytic_relu_cost(paf, micros),
            ]
        )
    artifact(
        "paf_cost_model.txt",
        format_table(
            ["form", "ct mults", "pt mults", "rescales", "est. seconds"],
            rows,
            title="Analytic encrypted-ReLU cost model (op counts x measured per-op)",
        ),
    )
    # cost model ordering matches depth ordering: alpha10 most expensive
    assert rows[0][-1] == max(r[-1] for r in rows)
