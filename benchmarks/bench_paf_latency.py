"""Per-PAF encrypted-ReLU latency (the §5.1 latency evaluation) and the
analytic cost model cross-check, plus the matvec rotation/keyswitch cost
model (naive Halevi-Shoup vs BSGS with hoisted baby steps)."""

import pytest

from repro.analysis.tables import format_table
from repro.ckks import CkksParams
from repro.fhe import (
    analytic_matvec_cost,
    analytic_relu_cost,
    matvec_op_counts,
    measure_op_micros,
    measure_relu_latency,
    paf_op_counts,
    plan_matvec,
)
from repro.paf import get_paf, minimax_alpha10_deg27

PARAMS = CkksParams(n=2048, scale_bits=25, depth=12)
FORMS = ["f1f1g1g1", "alpha7", "f2g3", "f2g2", "f1g2"]


@pytest.mark.parametrize("form", FORMS)
def bench_paf_relu_latency(benchmark, form):
    paf = get_paf(form)
    result = benchmark.pedantic(
        lambda: measure_relu_latency(paf, PARAMS), rounds=1, iterations=1
    )
    assert result.levels_consumed == paf.mult_depth + 1


def bench_paf_cost_model(benchmark, artifact):
    micros = benchmark.pedantic(
        lambda: measure_op_micros(PARAMS), rounds=1, iterations=1
    )
    rows = []
    pafs = [minimax_alpha10_deg27()] + [get_paf(f) for f in FORMS]
    for paf in pafs:
        counts = paf_op_counts(paf)
        rows.append(
            [
                paf.name,
                counts["ct_mult"],
                counts["pt_mult"],
                counts["rescale"],
                analytic_relu_cost(paf, micros),
            ]
        )
    artifact(
        "paf_cost_model.txt",
        format_table(
            ["form", "ct mults", "pt mults", "rescales", "est. seconds"],
            rows,
            title="Analytic encrypted-ReLU cost model (op counts x measured per-op)",
        ),
    )
    # cost model ordering matches depth ordering: alpha10 most expensive
    assert rows[0][-1] == max(r[-1] for r in rows)


def bench_matvec_cost_model(benchmark, artifact):
    """Naive vs BSGS keyswitch counts and estimated seconds per dense
    encrypted matvec — the linear-layer half of the forward-pass cost."""
    micros = benchmark.pedantic(
        lambda: measure_op_micros(PARAMS), rounds=1, iterations=1
    )
    rows = []
    for size in (16, 64, 256, 1024):
        plan = plan_matvec(range(size), size)
        counts = matvec_op_counts(plan)
        naive_seconds = (
            plan.naive_keyswitches * micros["rotate"]
            + size * micros["pt_mult"]
            + max(micros["rescale"], 0.0)
        )
        bsgs_seconds = analytic_matvec_cost(plan, micros)
        rows.append(
            [
                size,
                plan.naive_keyswitches,
                f"{plan.bsgs_keyswitches} ({counts['rotate_hoisted']}h+{counts['rotate']}g)",
                f"{naive_seconds:.3f}",
                f"{bsgs_seconds:.3f}",
                f"{naive_seconds / bsgs_seconds:.1f}x",
            ]
        )
        assert plan.use_bsgs and plan.bsgs_keyswitches < plan.naive_keyswitches
    artifact(
        "matvec_cost_model.txt",
        format_table(
            ["size", "naive keyswitch", "bsgs keyswitch", "naive est. s", "bsgs est. s", "speedup"],
            rows,
            title="Encrypted matvec cost model: Halevi-Shoup naive vs BSGS+hoisting",
        ),
    )
