"""Encrypted toy-transformer forward: wall clock + deterministic model cost.

The transformer leg of the CI trend gate (``tools/check_bench_trend.py``):

    PYTHONPATH=src python benchmarks/bench_transformer_forward.py [--json PATH]
        [--skip-wall] [--from-opcounts OPCOUNTS.json] [--trace TRACE.json]
        [--backend NAME] [--repeats K] [--base BENCH.json]

Compiles the shared toy transformer
(:func:`repro.fhe.toy.compiled_toy_transformer` — one self-attention +
GELU MLP block over 4 token shards, depth 33) and reports, per model:

* ``model_cost_seconds`` — the analytic latency-model cost: measured
  HE-op counts of one token-sharded forward multiplied by *pinned*
  reference per-op timings (:data:`REFERENCE_MICROS`).  Deterministic
  for a given compile, so the trend gate is immune to CI machine jitter
  — it moves only when the op counts (projection plans, the attention
  dance, the PAF plans) move.
* ``wall_seconds`` / ``wall_seconds_by_backend`` /
  ``wall_speedup_vectorized`` — measured forwards on this machine
  (informational; never gated), best-of-``--repeats`` interleaved runs
  per backend with the output ciphertexts checked bit-identical.
* ``keyswitches`` / ``nonscalar_mults`` — the op-count gate currencies,
  for cross-referencing against ``opcount_summary``.

``--from-opcounts`` derives the record from an ``opcount_summary.py
--json`` file instead of compiling and measuring again — the CI
bench-trend job uses it so the toy transformer trains exactly once per
run.  ``--base`` merges another benchmark record (e.g.
``bench_resnet.json``) so one combined JSON covers every model on the
ratchet.
"""

import argparse
import json
import time

import numpy as np

from repro.ckks.instrumentation import CountingEvaluator
from repro.fhe.latency import REFERENCE_MICROS, cost_from_counts
from repro.fhe.toy import compiled_toy_transformer
from repro.obs import TracingEvaluator, format_slack_report, slack_report


def model_cost_seconds(counts: dict) -> float:
    """Op counts × pinned reference timings (the library's shared dot
    product, so the gated metric can never drift from the analytic cost
    model's accounting)."""
    return cost_from_counts(counts, REFERENCE_MICROS)


def bench(
    skip_wall: bool = False,
    trace_path: str | None = None,
    backend: str | None = None,
    repeats: int = 2,
) -> dict:
    enc = compiled_toy_transformer()
    ctx = enc.ctx
    if backend is not None:
        ctx.set_backend(backend)
    in_dim = sum(enc.input_splits)
    counting = CountingEvaluator(enc.ev)
    ev = TracingEvaluator(counting) if trace_path else counting
    cts = enc.encrypt_batch_shards([np.zeros(in_dim)])
    counting.reset()
    if trace_path:
        ev.tracer.reset()
    enc.forward_shards(cts, ev=ev)
    if trace_path:
        ev.tracer.write_json(trace_path, meta={"model": "toy_transformer"})
        print(format_slack_report(slack_report(ev.tracer, model="toy_transformer")))
        print()
    record = {
        "model_cost_seconds": round(model_cost_seconds(counting.counts), 4),
        "keyswitches": counting.keyswitch_count,
        "nonscalar_mults": counting.nonscalar_mult_count,
        "counts": {k: int(v) for k, v in sorted(counting.counts.items())},
        "backend": ctx.backend.name,
    }
    if not skip_wall:
        # Interleaved best-of-``repeats`` wall clock per backend on one
        # shared encrypted input; reusing the input doubles as an
        # end-to-end conformance check (outputs must be bit-identical).
        names = [ctx.backend.name] if backend is not None else ["reference", "vectorized"]
        cts = enc.encrypt_batch_shards([np.zeros(in_dim)])
        walls: dict = {}
        outputs: dict = {}
        for _ in range(max(1, repeats)):
            for name in names:
                ctx.set_backend(name)
                t0 = time.perf_counter()
                out = enc.forward_shards(cts)
                dt = time.perf_counter() - t0
                walls[name] = min(dt, walls.get(name, dt))
                outputs.setdefault(name, out)
        ctx.set_backend(record["backend"])
        if len(names) > 1:
            for ct_r, ct_v in zip(outputs["reference"], outputs["vectorized"]):
                if not (
                    np.array_equal(ct_r.c0.data, ct_v.c0.data)
                    and np.array_equal(ct_r.c1.data, ct_v.c1.data)
                ):  # pragma: no cover - conformance suite guards this
                    raise AssertionError(
                        "backend outputs diverged: reference and vectorized "
                        "forwards must produce bit-identical ciphertexts"
                    )
            record["wall_seconds_by_backend"] = {
                name: round(wall, 3) for name, wall in walls.items()
            }
            record["wall_speedup_vectorized"] = round(
                walls["reference"] / walls["vectorized"], 2
            )
        record["wall_seconds"] = round(walls[names[0]], 3)
    return {"models": {"toy_transformer": record}}


def from_opcounts(path: str) -> dict:
    """Derive the record from an existing op-count gate JSON (no crypto).

    When the summary was produced with ``--check-backends`` (its header
    records the verified backend names), a ``toy_transformer_vectorized``
    entry rides along with the same counts — op counts are
    backend-invariant by the conformance gate.  When the summary carries
    the 2-block ``toy_transformer_stacked`` model (the refresh demo), a
    ``bench_transformer_stacked`` record rides the trend ratchet too:
    its model cost prices the auto-placed recrypt refresh's
    decrypt/encrypt boundary ops alongside the usual keyswitch currency.
    """
    with open(path) as fh:
        payload = json.load(fh)
    rec = payload["models"]["toy_transformer"]
    entry = {
        "model_cost_seconds": round(model_cost_seconds(rec["counts"]), 4),
        "keyswitches": rec["keyswitches"],
        "nonscalar_mults": rec["nonscalar_mults"],
        "counts": rec["counts"],
    }
    out = {"models": {"toy_transformer": entry}}
    if "vectorized" in payload.get("backends", []):
        out["models"]["toy_transformer_vectorized"] = dict(entry, backend="vectorized")
    stacked = payload["models"].get("toy_transformer_stacked")
    if stacked is not None:
        out["models"]["bench_transformer_stacked"] = {
            "model_cost_seconds": round(model_cost_seconds(stacked["counts"]), 4),
            "keyswitches": stacked["keyswitches"],
            "nonscalar_mults": stacked["nonscalar_mults"],
            "counts": stacked["counts"],
        }
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", dest="json_path", help="write the record here")
    parser.add_argument(
        "--skip-wall",
        action="store_true",
        help="skip the wall-clock forward (model cost only)",
    )
    parser.add_argument(
        "--from-opcounts",
        dest="opcounts_path",
        help="derive the record from opcount_summary.py --json output "
        "instead of compiling and measuring (implies no wall clock)",
    )
    parser.add_argument(
        "--trace",
        dest="trace_path",
        help="write an execution trace (repro-trace-v1 JSON) of the "
        "measured forward here and print its level-slack report "
        "(incompatible with --from-opcounts, which runs no crypto)",
    )
    parser.add_argument(
        "--backend",
        help="measure only this kernel backend (default: measure "
        "reference and vectorized and report the speedup)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="wall-clock repeats per backend; the minimum is reported",
    )
    parser.add_argument(
        "--base",
        help="merge this benchmark record's models into the output "
        "(must not redefine any model measured here)",
    )
    args = parser.parse_args()
    if args.opcounts_path:
        if args.trace_path:
            parser.error("--trace needs a measured forward; drop --from-opcounts")
        result = from_opcounts(args.opcounts_path)
    else:
        result = bench(
            skip_wall=args.skip_wall,
            trace_path=args.trace_path,
            backend=args.backend,
            repeats=args.repeats,
        )
    if args.base:
        with open(args.base) as fh:
            base = json.load(fh)
        overlap = set(base.get("models", {})) & set(result["models"])
        if overlap:
            raise SystemExit(f"--base record redefines {sorted(overlap)}")
        result["models"].update(base["models"])
    for model, rec in result["models"].items():
        line = (
            f"{model}: model_cost={rec['model_cost_seconds']}s "
            f"keyswitches={rec['keyswitches']} "
            f"nonscalar_mults={rec['nonscalar_mults']} "
            f"wall={rec.get('wall_seconds', 'skipped')}"
        )
        if "wall_speedup_vectorized" in rec:
            by_backend = rec["wall_seconds_by_backend"]
            line += (
                f" (reference={by_backend['reference']}s "
                f"vectorized={by_backend['vectorized']}s "
                f"speedup={rec['wall_speedup_vectorized']}x)"
            )
        print(line)
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
