"""CKKS primitive microbenchmarks (the latency substrate of Fig. 1/Tab. 4).

These are true pytest-benchmark microbenches (multiple rounds) for the
homomorphic primitives whose counts the analytic cost model multiplies.
"""

import numpy as np
import pytest

from repro.ckks import CkksParams
from repro.fhe.latency import shared_runtime

PARAMS = CkksParams(n=2048, scale_bits=25, depth=8)


@pytest.fixture(scope="module")
def runtime():
    ctx, keys, ev = shared_runtime(PARAMS)
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, ctx.slots)
    a = ev.encrypt(x)
    b = ev.encrypt(x)
    return ctx, ev, a, b


def bench_ckks_encrypt(benchmark, runtime):
    ctx, ev, a, b = runtime
    x = np.random.default_rng(1).uniform(-1, 1, ctx.slots)
    benchmark(lambda: ev.encrypt(x))


def bench_ckks_add(benchmark, runtime):
    _, ev, a, b = runtime
    benchmark(lambda: ev.add(a, b))


def bench_ckks_mul_relin(benchmark, runtime):
    _, ev, a, b = runtime
    benchmark(lambda: ev.mul(a, b))


def bench_ckks_mul_plain(benchmark, runtime):
    _, ev, a, b = runtime
    benchmark(lambda: ev.mul_plain(a, 0.5))


def bench_ckks_rescale(benchmark, runtime):
    _, ev, a, b = runtime
    prod = ev.mul(a, b)
    benchmark(lambda: ev.rescale(prod))


def bench_ckks_decrypt(benchmark, runtime):
    _, ev, a, b = runtime
    benchmark(lambda: ev.decrypt(a))
