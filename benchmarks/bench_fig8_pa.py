"""Fig. 8 — Progressive Approximation vs direct replacement strategies."""

import numpy as np

from repro.experiments import is_quick
from repro.experiments.fig8 import print_fig8, run_fig8

FORMS = None if not is_quick() else ["f1f1g1g1", "f1g2"]


def bench_fig8_progressive_approximation(benchmark, artifact):
    result = benchmark.pedantic(
        lambda: run_fig8(seed=0, forms=FORMS), rounds=1, iterations=1
    )
    artifact("fig8.txt", print_fig8(result))
    # Shape: PA is competitive with the direct baseline on average
    # (the paper reports +0.4-1.9% with one outlier the other way).
    diffs = [
        v["progressive"] - v["direct+direct"] for v in result["forms"].values()
    ]
    assert np.mean(diffs) > -0.05
