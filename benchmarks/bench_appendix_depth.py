"""Appendix C (Tab. 8 / Fig. 10) — multiplication depth analysis."""

from repro.experiments.appendix_depth import (
    print_appendix_depth,
    run_measured_depths,
)


def bench_appendix_depth(benchmark, artifact):
    measured = benchmark.pedantic(
        lambda: run_measured_depths(n=1024), rounds=1, iterations=1
    )
    artifact("appendix_depth.txt", print_appendix_depth())
    # measured CKKS level consumption equals the analytic depth, per form
    for form, v in measured.items():
        assert v["measured"] == v["analytic"], form
