"""Encrypted toy-ResNet forward: wall clock + deterministic model cost.

The benchmark half of the CI trend gate (``tools/check_bench_trend.py``):

    PYTHONPATH=src python benchmarks/bench_resnet_forward.py [--json PATH]
        [--skip-wall] [--from-opcounts OPCOUNTS.json] [--trace TRACE.json]

Compiles the shared toy ResNet (:func:`repro.fhe.toy.compiled_toy_resnet`
— 2 residual blocks, stride-2 projection skip, channels sharded across 2
ciphertexts) and reports, per model:

* ``model_cost_seconds`` — the analytic latency-model cost: measured
  HE-op counts of one sharded forward multiplied by *pinned* reference
  per-op timings (:data:`REFERENCE_MICROS`).  Deterministic for a given
  compile, so the trend gate is immune to CI machine jitter — it moves
  only when the op counts (plans, sharding, merges) move.
* ``wall_seconds`` — one measured forward on this machine (informational;
  never gated).
* ``keyswitches`` / ``nonscalar_mults`` — the op-count gate currencies,
  for cross-referencing against ``opcount_summary``.

``--from-opcounts`` derives the record from an ``opcount_summary.py
--json`` file instead of compiling and measuring again — the CI
bench-trend job uses it so the toy ResNet trains exactly once per run
(the summary's measured forward counts are the same counts this
benchmark would measure).
"""

import argparse
import json
import time

import numpy as np

from repro.ckks.instrumentation import CountingEvaluator
from repro.fhe.latency import REFERENCE_MICROS, cost_from_counts
from repro.fhe.toy import compiled_toy_resnet
from repro.obs import TracingEvaluator, format_slack_report, slack_report


def model_cost_seconds(counts: dict) -> float:
    """Op counts × pinned reference timings (the library's shared dot
    product, so the gated metric can never drift from the analytic cost
    model's accounting)."""
    return cost_from_counts(counts, REFERENCE_MICROS)


def bench(skip_wall: bool = False, trace_path: str | None = None) -> dict:
    enc = compiled_toy_resnet()
    in_dim = sum(enc.input_splits)
    counting = CountingEvaluator(enc.ev)
    ev = TracingEvaluator(counting) if trace_path else counting
    cts = enc.encrypt_batch_shards([np.zeros(in_dim)])
    counting.reset()
    if trace_path:
        ev.tracer.reset()
    enc.forward_shards(cts, ev=ev)
    if trace_path:
        ev.tracer.write_json(trace_path, meta={"model": "toy_resnet"})
        print(format_slack_report(slack_report(ev.tracer, model="toy_resnet")))
        print()
    record = {
        "model_cost_seconds": round(model_cost_seconds(counting.counts), 4),
        "keyswitches": counting.keyswitch_count,
        "nonscalar_mults": counting.nonscalar_mult_count,
        "counts": {k: int(v) for k, v in sorted(counting.counts.items())},
    }
    if not skip_wall:
        cts = enc.encrypt_batch_shards([np.zeros(in_dim)])
        t0 = time.perf_counter()
        enc.forward_shards(cts)
        record["wall_seconds"] = round(time.perf_counter() - t0, 3)
    return {"models": {"toy_resnet": record}}


def from_opcounts(path: str) -> dict:
    """Derive the record from an existing op-count gate JSON (no crypto)."""
    with open(path) as fh:
        models = json.load(fh)["models"]
    rec = models["toy_resnet"]
    return {
        "models": {
            "toy_resnet": {
                "model_cost_seconds": round(model_cost_seconds(rec["counts"]), 4),
                "keyswitches": rec["keyswitches"],
                "nonscalar_mults": rec["nonscalar_mults"],
                "counts": rec["counts"],
            }
        }
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", dest="json_path", help="write the record here")
    parser.add_argument(
        "--skip-wall",
        action="store_true",
        help="skip the wall-clock forward (model cost only)",
    )
    parser.add_argument(
        "--from-opcounts",
        dest="opcounts_path",
        help="derive the record from opcount_summary.py --json output "
        "instead of compiling and measuring (implies no wall clock)",
    )
    parser.add_argument(
        "--trace",
        dest="trace_path",
        help="write an execution trace (repro-trace-v1 JSON) of the "
        "measured forward here and print its level-slack report "
        "(incompatible with --from-opcounts, which runs no crypto)",
    )
    args = parser.parse_args()
    if args.opcounts_path:
        if args.trace_path:
            parser.error("--trace needs a measured forward; drop --from-opcounts")
        result = from_opcounts(args.opcounts_path)
    else:
        result = bench(skip_wall=args.skip_wall, trace_path=args.trace_path)
    for model, rec in result["models"].items():
        print(
            f"{model}: model_cost={rec['model_cost_seconds']}s "
            f"keyswitches={rec['keyswitches']} "
            f"nonscalar_mults={rec['nonscalar_mults']} "
            f"wall={rec.get('wall_seconds', 'skipped')}"
        )
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
