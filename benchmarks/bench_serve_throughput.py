"""Batched-serving throughput: SIMD packing + encoding caches vs sequential,
plus the BSGS matvec's rotation/keyswitch savings over the naive path.

One ciphertext carries ``slots // (2·size)`` requests through a single
encrypted forward, and the serving artifact's plaintext caches remove all
steady-state encoding — so requests/sec should scale close to the batch
size.  The acceptance bars: batched serving at B >= 8 sustains at least
4x the sequential ``predict`` throughput on the toy MLP with identical
logits (atol 1e-3), and the BSGS forward performs strictly fewer
keyswitches than the naive reference while producing the same logits.
"""

import time

import numpy as np

from repro.analysis.tables import format_table
from repro.ckks.instrumentation import CountingEvaluator
from repro.fhe.toy import compiled_toy
from repro.serve import InferenceServer, ModelArtifact


def _matvec_paths(enc, repeats: int = 3):
    """Per-path op counts (one counted forward) + timed forwards."""
    rng = np.random.default_rng(2)
    ct = enc.encrypt_batch(rng.normal(size=(4, 8)))
    counting = CountingEvaluator(enc.ev)
    out = {}
    for label, kw in (("naive", {"reference": True}), ("bsgs", {})):
        counting.reset()
        ct_out = enc.forward(ct, ev=counting, **kw)
        t0 = time.perf_counter()
        for _ in range(repeats):
            enc.forward(ct, **kw)
        out[label] = {
            "seconds": (time.perf_counter() - t0) / repeats,
            "rotations": counting.counts["rotate"] + counting.counts["rotate_hoisted"],
            "keyswitches": counting.keyswitch_count,
            "logits": enc.decrypt_logits(ct_out, 3, batch=4),
        }
    return out


def _measure(enc, batch_sizes):
    rng = np.random.default_rng(1)
    xs_all = rng.normal(size=(max(batch_sizes), 8))

    # sequential baseline: one request per ciphertext, per-call encoding
    n_seq = 4
    t0 = time.perf_counter()
    seq_logits = [
        enc.decrypt_logits(enc.forward(enc.encrypt_input(x)), 3)
        for x in xs_all[:n_seq]
    ]
    seq_rps = n_seq / (time.perf_counter() - t0)

    rows = [["sequential predict", 1, f"{seq_rps:.2f}", "1.0x"]]
    speedups = {}
    artifact = ModelArtifact(enc).warm()
    for b in batch_sizes:
        xs = xs_all[:b]
        with InferenceServer(
            artifact, num_classes=3, max_batch_size=b, max_wait_ms=100, warm=False
        ) as srv:
            srv.predict_many(xs)                       # steady-state warmup pass
            srv.metrics.reset()
            t0 = time.perf_counter()
            results = srv.predict_many(xs)
            rps = b / (time.perf_counter() - t0)
        for res, seq in zip(results, seq_logits):
            np.testing.assert_allclose(res.logits, seq, atol=1e-3)
        speedups[b] = rps / seq_rps
        rows.append([f"batched serve (B={b})", b, f"{rps:.2f}", f"{speedups[b]:.1f}x"])
    return rows, speedups, artifact


def bench_serve_throughput(benchmark, artifact):
    enc = compiled_toy()
    rows, speedups, art = benchmark.pedantic(
        lambda: _measure(enc, batch_sizes=[8, enc.max_batch]), rounds=1, iterations=1
    )
    rows.append(["encoding cache hit-rate", "", f"{art.cache.hit_rate:.2f}", ""])
    artifact(
        "serve_throughput.txt",
        format_table(
            ["path", "batch", "req/s", "speedup"],
            rows,
            title="Batched encrypted-inference serving throughput (toy MLP)",
        ),
    )
    # acceptance: SIMD batching at B >= 8 amortises to >= 4x sequential
    assert speedups[8] >= 4.0, f"B=8 speedup {speedups[8]:.2f}x < 4x"
    assert speedups[enc.max_batch] >= speedups[8] * 0.8  # scaling does not collapse


def bench_bsgs_vs_naive_forward(benchmark, artifact):
    """Rotation/keyswitch counts and wall-clock of one batched encrypted
    forward: BSGS with hoisted baby steps vs the naive diagonal loop."""
    enc = compiled_toy(reference_keys=True)
    paths = benchmark.pedantic(lambda: _matvec_paths(enc), rounds=1, iterations=1)
    naive, bsgs = paths["naive"], paths["bsgs"]
    speedup = naive["seconds"] / bsgs["seconds"]
    rows = [
        [
            label,
            p["rotations"],
            p["keyswitches"],
            f"{p['seconds'] * 1e3:.0f}",
            f"{naive['seconds'] / p['seconds']:.2f}x",
        ]
        for label, p in (("naive matvec", naive), ("bsgs matvec", bsgs))
    ]
    artifact(
        "bsgs_forward.txt",
        format_table(
            ["path", "rotations", "keyswitches", "ms/forward", "speedup"],
            rows,
            title="Encrypted forward: naive Halevi-Shoup vs BSGS + hoisting",
        ),
    )
    np.testing.assert_allclose(bsgs["logits"], naive["logits"], atol=1e-3)
    assert bsgs["keyswitches"] < naive["keyswitches"], (
        f"BSGS keyswitches {bsgs['keyswitches']} not below naive "
        f"{naive['keyswitches']}"
    )
    assert speedup > 1.0, f"BSGS forward not faster ({speedup:.2f}x)"
