"""Batched-serving throughput: SIMD packing + encoding caches vs sequential.

One ciphertext carries ``slots // (2·size)`` requests through a single
encrypted forward, and the serving artifact's plaintext caches remove all
steady-state encoding — so requests/sec should scale close to the batch
size.  The acceptance bar: batched serving at B >= 8 sustains at least
4x the sequential ``predict`` throughput on the toy MLP, with identical
logits (atol 1e-3).
"""

import time

import numpy as np

from repro.analysis.tables import format_table
from repro.ckks import CkksParams
from repro.core import calibrate_static_scales, convert_to_static, replace_all
from repro.fhe import compile_mlp
from repro.nn.models import mlp
from repro.paf import get_paf
from repro.serve import InferenceServer, ModelArtifact


def _compiled_toy():
    rng = np.random.default_rng(0)
    model = mlp(8, hidden=(6,), num_classes=3, seed=0)
    replace_all(model, get_paf("f1g2"), np.zeros((1, 8)))
    calibrate_static_scales(model, [rng.normal(size=(64, 8))])
    convert_to_static(model)
    enc = compile_mlp(model, CkksParams(n=512, scale_bits=25, depth=9), seed=0)
    model.eval()
    return enc


def _measure(enc, batch_sizes):
    rng = np.random.default_rng(1)
    xs_all = rng.normal(size=(max(batch_sizes), 8))

    # sequential baseline: one request per ciphertext, per-call encoding
    n_seq = 4
    t0 = time.perf_counter()
    seq_logits = [
        enc.decrypt_logits(enc.forward(enc.encrypt_input(x)), 3)
        for x in xs_all[:n_seq]
    ]
    seq_rps = n_seq / (time.perf_counter() - t0)

    rows = [["sequential predict", 1, f"{seq_rps:.2f}", "1.0x"]]
    speedups = {}
    artifact = ModelArtifact(enc).warm()
    for b in batch_sizes:
        xs = xs_all[:b]
        with InferenceServer(
            artifact, num_classes=3, max_batch_size=b, max_wait_ms=100, warm=False
        ) as srv:
            srv.predict_many(xs)                       # steady-state warmup pass
            srv.metrics.reset()
            t0 = time.perf_counter()
            results = srv.predict_many(xs)
            rps = b / (time.perf_counter() - t0)
        for res, seq in zip(results, seq_logits):
            np.testing.assert_allclose(res.logits, seq, atol=1e-3)
        speedups[b] = rps / seq_rps
        rows.append([f"batched serve (B={b})", b, f"{rps:.2f}", f"{speedups[b]:.1f}x"])
    return rows, speedups, artifact


def bench_serve_throughput(benchmark, artifact):
    enc = _compiled_toy()
    rows, speedups, art = benchmark.pedantic(
        lambda: _measure(enc, batch_sizes=[8, enc.max_batch]), rounds=1, iterations=1
    )
    rows.append(["encoding cache hit-rate", "", f"{art.cache.hit_rate:.2f}", ""])
    artifact(
        "serve_throughput.txt",
        format_table(
            ["path", "batch", "req/s", "speedup"],
            rows,
            title="Batched encrypted-inference serving throughput (toy MLP)",
        ),
    )
    # acceptance: SIMD batching at B >= 8 amortises to >= 4x sequential
    assert speedups[8] >= 4.0, f"B=8 speedup {speedups[8]:.2f}x < 4x"
    assert speedups[enc.max_batch] >= speedups[8] * 0.8  # scaling does not collapse
