"""Fig. 7 — Coefficient Tuning vs baseline, no fine-tuning.

Shape checks: CT never hurts on average, gains are largest for the
lowest-degree form, and replacing MaxPooling too costs accuracy vs
ReLU-only replacement.
"""

import numpy as np

from repro.experiments import is_quick
from repro.experiments.fig7 import print_fig7, run_fig7

FORMS = None if not is_quick() else ["f1f1g1g1", "f2g2", "f1g2"]


def bench_fig7_coefficient_tuning(benchmark, artifact):
    result = benchmark.pedantic(
        lambda: run_fig7(seed=0, forms=FORMS), rounds=1, iterations=1
    )
    artifact("fig7.txt", print_fig7(result))

    forms = result["forms"]
    gains = [
        panels["all_nonpoly"]["ct"] - panels["all_nonpoly"]["baseline"]
        for panels in forms.values()
    ]
    # CT helps on average across forms (paper: 1.05-3.32x gains)
    assert np.mean(gains) > -0.02
    # replacing MaxPooling too hurts vs ReLU-only (Sec. 5.2) for the
    # lowest-degree form, where the nested-call error is largest
    low = forms[list(forms)[-1]]
    assert low["all_nonpoly"]["baseline"] <= low["relu_only"]["baseline"] + 0.02
