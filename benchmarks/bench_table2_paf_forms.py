"""Tab. 2 — PAF form inventory: degree and multiplication depth."""

from repro.experiments.table2 import PAPER_TABLE2, print_table2, run_table2


def bench_table2(benchmark, artifact):
    result = benchmark(run_table2)
    artifact("table2.txt", print_table2())
    got = {k: (v["degree"], v["mult_depth"]) for k, v in result.items()}
    assert got == PAPER_TABLE2
