"""Fig. 1 — latency-accuracy Pareto frontier."""

from repro.analysis.tables import format_table
from repro.experiments.table4 import run_fig1, run_table4


def bench_fig1_pareto(benchmark, artifact):
    def runner():
        t4 = run_table4(seed=0, with_accuracy=True)
        return t4, run_fig1(t4)

    t4, fig1 = benchmark.pedantic(runner, rounds=1, iterations=1)
    rows = [[p.name, p.latency, p.accuracy] for p in fig1["points"]]
    frontier_names = {p.name for p in fig1["frontier"]}
    rows = [r + ["*" if r[0] in frontier_names else ""] for r in rows]
    artifact(
        "fig1.txt",
        format_table(
            ["design point", "latency (s)", "accuracy", "frontier"],
            rows,
            title="Figure 1: latency-accuracy trade-off (frontier marked *)",
        ),
    )
    # the frontier must contain at least one SMART-PAF (non-baseline) point
    assert any(not p.name.startswith("alpha10") for p in fig1["frontier"])
