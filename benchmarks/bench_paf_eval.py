"""Activation benchmark: ladder vs Paterson–Stockmeyer per registry PAF.

Standalone script (also imported by ``opcount_summary.py`` for the CI
artifact):

    PYTHONPATH=src python benchmarks/bench_paf_eval.py [outfile]
    PYTHONPATH=src python benchmarks/bench_paf_eval.py --counts-only [outfile]

Prints, per registry PAF form: the analytic nonscalar-mult counts of both
activation paths (pinned in ``tests/fhe/test_op_counts.py``), the measured
counts of one encrypted ReLU, and — unless ``--counts-only`` — the
wall-clock latency of each path (median of ``--repeats`` runs on a shared
context per depth).
"""

import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.ckks import CkksParams, eval_paf_relu
from repro.ckks.instrumentation import CountingEvaluator
from repro.ckks.poly_plan import plan_paf_relu
from repro.fhe.latency import shared_runtime
from repro.paf import paper_pafs
from repro.paf.relu import relu_mult_depth


def activation_count_table(include_alpha10: bool = True) -> str:
    """Analytic per-PAF op-count table (no FHE work — safe for CI)."""
    rows = []
    for paf in paper_pafs(include_alpha10=include_alpha10):
        plan = plan_paf_relu(paf)
        ladder = sum(p.ladder_mults for p in plan.components) + 1
        saved = 100.0 * (ladder - plan.nonscalar_mults) / ladder
        rows.append(
            [
                paf.name,
                paf.reported_degree,
                plan.mult_depth,
                ladder,
                plan.nonscalar_mults,
                f"{saved:.0f}%",
                " ".join(
                    f"{p.shape[:3]}/w{p.window}" if p.use_ps else "ladder"
                    for p in plan.components
                ),
            ]
        )
    return format_table(
        ["PAF", "degree", "depth", "ladder ct*ct", "PS ct*ct", "saved", "per-component"],
        rows,
        title="Activation nonscalar-mult counts: ladder vs Paterson-Stockmeyer",
    )


def measured_latency_table(repeats: int = 3, n: int = 1024) -> str:
    """Measured encrypted-ReLU wall-clock + op counts on both paths."""
    import time

    rows = []
    for paf in paper_pafs(include_alpha10=True):
        depth = relu_mult_depth(paf)
        params = CkksParams(n=n, scale_bits=25, depth=depth)
        ctx, _, ev = shared_runtime(params)
        rng = np.random.default_rng(0)
        ct = ev.encrypt(rng.uniform(-1, 1, ctx.slots))
        plan = plan_paf_relu(paf)
        row = [paf.name, depth]
        for reference in (True, False):
            counting = CountingEvaluator(ev)
            counting.reset()
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                eval_paf_relu(
                    counting, ct, paf,
                    plan=None if reference else plan,
                    reference=reference,
                )
                times.append(time.perf_counter() - t0)
            row.append(counting.nonscalar_mult_count // repeats)
            row.append(f"{np.median(times) * 1e3:.1f}")
        ladder_ms, ps_ms = float(row[3]), float(row[5])
        row.append(f"{ladder_ms / ps_ms:.2f}x")
        rows.append(row)
    return format_table(
        ["PAF", "depth", "ladder ct*ct", "ladder ms", "PS ct*ct", "PS ms", "speedup"],
        rows,
        title=f"Measured encrypted-ReLU latency (n={n}, scale 2^25)",
    )


def main() -> int:
    args = [a for a in sys.argv[1:]]
    counts_only = "--counts-only" in args
    if counts_only:
        args.remove("--counts-only")
    out = activation_count_table()
    if not counts_only:
        out += "\n\n" + measured_latency_table()
    print(out)
    if args:
        with open(args[0], "w") as fh:
            fh.write(out + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
