"""Tab. 3 — ablation of CT / PA / AT / DS / SS combinations."""

from repro.experiments.table3 import print_table3_block, run_table3


def bench_table3_ablation(benchmark, artifact):
    blocks = benchmark.pedantic(lambda: run_table3(seed=0), rounds=1, iterations=1)
    text = "\n\n".join(
        print_table3_block(name, block) for name, block in blocks.items()
    )
    artifact("table3.txt", text)

    for block in blocks.values():
        for form, cell in block["rows"].items():
            # CT improves (or matches) the no-fine-tune accuracy
            assert cell["ct_no_ft_ds"] >= cell["no_ft_ds"] - 0.05, form
            # the HE-deployable SMART-PAF beats the prior-work SS baseline
            # on average; per-form we allow noise at quick scale
            assert cell["smartpaf_ss"] >= 0.0
        forms = list(block["rows"])
        mean_smart = sum(block["rows"][f]["smartpaf_ss"] for f in forms) / len(forms)
        mean_prior = sum(block["rows"][f]["baseline_ss"] for f in forms) / len(forms)
        assert mean_smart >= mean_prior - 0.05
