"""Tab. 4 — latency + accuracy vs the 27-degree minimax baseline."""

from repro.experiments.table4 import print_table4, run_table4


def bench_table4_speedup(benchmark, artifact):
    result = benchmark.pedantic(
        lambda: run_table4(seed=0, with_accuracy=True), rounds=1, iterations=1
    )
    artifact("table4.txt", print_table4(result))
    rows = result["rows"]
    # every low-degree form is faster than the 27-degree baseline
    for form, r in rows.items():
        assert r["speedup"] > 1.0, (form, r)
    # speedup ordering follows multiplication depth (lower depth, faster)
    by_depth = sorted(rows.values(), key=lambda r: r["mult_depth"])
    assert by_depth[0]["speedup"] >= by_depth[-1]["speedup"]
