"""HE-op-count summary: per-layer plans + full-forward + activation counts.

Run by CI (and uploadable as a job artifact) so every PR shows the
hot-path rotation/keyswitch/nonscalar-mult budget at a glance:

    PYTHONPATH=src python benchmarks/opcount_summary.py [outfile]

Prints (and optionally writes) the per-layer BSGS matvec plans of the toy
serving model, the measured op counts of one encrypted forward on the
reference and planned paths, and the per-registry-PAF activation
nonscalar-mult table (ladder vs Paterson–Stockmeyer, from
``bench_paf_eval``).
"""

import sys

import numpy as np

from bench_paf_eval import activation_count_table
from repro.analysis.tables import format_table
from repro.ckks.instrumentation import CountingEvaluator
from repro.fhe.toy import compiled_toy


def build_summary() -> str:
    enc = compiled_toy(reference_keys=True)

    plan_rows = [
        [
            i,
            p.num_diagonals,
            f"{p.n1}x{p.n2}",
            p.naive_keyswitches,
            p.bsgs_keyswitches,
            "bsgs" if p.use_bsgs else "naive",
        ]
        for i, p in sorted(enc.matvec_plans.items())
    ]
    plan_table = format_table(
        ["layer", "diagonals", "n1 x n2", "naive ks", "bsgs ks", "chosen"],
        plan_rows,
        title="Per-layer matvec plans (toy 8-6-3 serving model)",
    )

    counting = CountingEvaluator(enc.ev)
    ct = enc.encrypt_batch([np.zeros(8)])
    forward_rows = []
    for label, kw in (("reference", {"reference": True}), ("planned", {})):
        counting.reset()
        enc.forward(ct, ev=counting, **kw)
        c = counting.counts
        forward_rows.append(
            [
                label,
                c["rotate"],
                c["rotate_hoisted"],
                c["hoist_decompose"],
                counting.keyswitch_count,
                counting.nonscalar_mult_count,
                c["mul_plain"],
                c["rescale"],
            ]
        )
    forward_table = format_table(
        [
            "path", "rotate", "hoisted", "decompose", "keyswitches",
            "ct*ct mult", "pt mult", "rescale",
        ],
        forward_rows,
        title="Measured op counts: one encrypted forward "
        "(reference = naive matvec + ladder PAF)",
    )
    return "\n\n".join([plan_table, forward_table, activation_count_table()])


def main() -> int:
    summary = build_summary()
    print(summary)
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as fh:
            fh.write(summary + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
