"""HE-op-count summary: per-layer plans + full-forward + activation counts.

Run by CI (and uploadable as a job artifact) so every PR shows the
hot-path rotation/keyswitch/nonscalar-mult budget at a glance:

    PYTHONPATH=src python benchmarks/opcount_summary.py [outfile] [--json PATH]

Prints (and optionally writes) the per-layer BSGS matvec plans of the
two pinned serving models — the toy MLP and the trained toy CNN — the
measured op counts of one encrypted forward on each (reference and
planned paths for the MLP, planned for the CNN), and the
per-registry-PAF activation nonscalar-mult table (ladder vs
Paterson–Stockmeyer, from ``bench_paf_eval``).

``--json`` additionally writes the machine-readable per-model counts
that ``tools/check_opcounts.py`` gates against
``benchmarks/opcount_baseline.json``: a >2% keyswitch or nonscalar-mult
regression on any pinned model fails CI.

``--trace-dir DIR`` wraps each measured forward in a
:class:`repro.obs.TracingEvaluator` and writes one execution trace
(``repro-trace-v1`` JSON) per model — ``trace_toy_mlp.json``,
``trace_toy_cnn.json``, ``trace_toy_resnet.json``,
``trace_toy_transformer.json``, ``trace_toy_transformer_stacked.json``
(the refresh demo; its mid-chain level raise is legal only inside the
``refresh:recrypt`` span) — which CI validates
(``tools/check_trace.py``), slack-gates (``tools/check_slack.py``) and
uploads as artifacts.  Tracing is non-perturbing, so the gated counts
are identical with or without it.
"""

import argparse
import json
import os

import numpy as np

from bench_paf_eval import activation_count_table
from repro.analysis.tables import format_table
from repro.ckks.backend import available_backends
from repro.ckks.instrumentation import CountingEvaluator
from repro.fhe.toy import (
    compiled_toy,
    compiled_toy_cnn,
    compiled_toy_resnet,
    compiled_toy_transformer,
    compiled_toy_transformer_stacked,
)
from repro.obs import TracingEvaluator


def plan_table(enc, title: str) -> str:
    rows = [
        [
            i,
            p.num_diagonals,
            f"{p.n1}x{p.n2}",
            p.naive_keyswitches,
            p.bsgs_keyswitches,
            "bsgs" if p.use_bsgs else "naive",
        ]
        for i, p in sorted(enc.matvec_plans.items())
    ]
    return format_table(
        ["layer", "diagonals", "n1 x n2", "naive ks", "bsgs ks", "chosen"],
        rows,
        title=title,
    )


def shard_plan_table(enc, title: str) -> str:
    """Per-block matvec plans of a sharded (multi-ciphertext) network."""
    rows = []
    for li, grid in sorted(enc.shard_plans.items()):
        kind = enc.layers[li].kind
        for j, row in enumerate(grid):
            for i, p in enumerate(row):
                if p is None:
                    continue
                rows.append(
                    [
                        f"{li} ({kind})",
                        f"{j}<-{i}",
                        p.num_diagonals,
                        f"{p.n1}x{p.n2}",
                        p.naive_keyswitches,
                        p.bsgs_keyswitches,
                        "bsgs" if p.use_bsgs else "naive",
                    ]
                )
    return format_table(
        ["layer", "block", "diagonals", "n1 x n2", "naive ks", "bsgs ks", "chosen"],
        rows,
        title=title,
    )


def _trace_to(trace_dir: str | None, model: str) -> str | None:
    if trace_dir is None:
        return None
    os.makedirs(trace_dir, exist_ok=True)
    return os.path.join(trace_dir, f"trace_{model}.json")


def measure_forward(
    enc, in_dim: int, mode: str = "plan", trace_path: str | None = None
) -> CountingEvaluator:
    """Op counts of one encrypted forward on a zero input."""
    counting = CountingEvaluator(enc.ev)
    ev = TracingEvaluator(counting) if trace_path else counting
    ct = enc.encrypt_batch([np.zeros(in_dim)])
    counting.reset()
    enc.forward(ct, ev=ev, mode=mode)
    if trace_path:
        model = os.path.basename(trace_path)[len("trace_") : -len(".json")]
        ev.tracer.write_json(trace_path, meta={"model": model})
    return counting


def measure_forward_shards(
    enc, in_dim: int, trace_path: str | None = None
) -> CountingEvaluator:
    """Op counts of one sharded encrypted forward on a zero input."""
    counting = CountingEvaluator(enc.ev)
    ev = TracingEvaluator(counting) if trace_path else counting
    cts = enc.encrypt_batch_shards([np.zeros(in_dim)])
    counting.reset()
    enc.forward_shards(cts, ev=ev)
    if trace_path:
        model = os.path.basename(trace_path)[len("trace_") : -len(".json")]
        ev.tracer.write_json(trace_path, meta={"model": model})
    return counting


def forward_row(label: str, counting: CountingEvaluator) -> list:
    c = counting.counts
    return [
        label,
        c["rotate"],
        c["rotate_hoisted"],
        c["hoist_decompose"],
        counting.keyswitch_count,
        counting.nonscalar_mult_count,
        c["mul_plain"],
        c["rescale"],
    ]


_FORWARD_HEADER = [
    "path", "rotate", "hoisted", "decompose", "keyswitches",
    "ct*ct mult", "pt mult", "rescale",
]


def gate_metrics(counting: CountingEvaluator) -> dict:
    """The per-model numbers the CI regression gate compares."""
    return {
        "keyswitches": counting.keyswitch_count,
        "nonscalar_mults": counting.nonscalar_mult_count,
        "counts": {k: int(v) for k, v in sorted(counting.counts.items())},
    }


def verify_backend_invariance(model: str, ctx, measure, base: dict) -> None:
    """Re-measure ``model``'s forward under every other registered kernel
    backend and fail loudly unless the gate JSON is byte-identical.

    Kernel backends may only change *how* residue arithmetic executes,
    never *which* HE ops run, so the serialized gate metrics must not
    move by a single byte when the backend is swapped (docs/backends.md).
    """
    blob = json.dumps(base, sort_keys=True).encode()
    orig = ctx.backend.name
    for name in available_backends():
        if name == orig:
            continue
        ctx.set_backend(name)
        try:
            other = json.dumps(gate_metrics(measure()), sort_keys=True).encode()
        finally:
            ctx.set_backend(orig)
        if other != blob:
            raise SystemExit(
                f"op-count gate JSON for {model!r} is not backend-invariant: "
                f"backend {name!r} diverges from {orig!r}. Kernel backends "
                "may only change how residue arithmetic executes, never "
                "which HE ops run — see docs/backends.md."
            )


def build_summary(trace_dir: str | None = None, check_backends: bool = False) -> tuple:
    """Returns ``(text summary, gate JSON dict)``."""
    sections = []
    models: dict = {}

    # --- toy MLP: both paths (reference keys are cheap at this size) ---
    mlp = compiled_toy(reference_keys=True)
    sections.append(
        plan_table(mlp, "Per-layer matvec plans (toy 8-6-3 MLP serving model)")
    )
    planned = measure_forward(mlp, 8, trace_path=_trace_to(trace_dir, "toy_mlp"))
    reference = measure_forward(mlp, 8, mode="reference")
    sections.append(
        format_table(
            _FORWARD_HEADER,
            [forward_row("reference", reference), forward_row("planned", planned)],
            title="Measured op counts: one encrypted MLP forward "
            "(reference = naive matvec + ladder PAF)",
        )
    )
    models["toy_mlp"] = gate_metrics(planned)
    if check_backends:
        verify_backend_invariance(
            "toy_mlp", mlp.ctx, lambda: measure_forward(mlp, 8), models["toy_mlp"]
        )

    # --- toy CNN: planned path (the naive conv loop pays one keyswitch
    # per diagonal — 100+ for the strided conv — so the reference forward
    # is measured in the test suite, not per CI run) ---
    cnn = compiled_toy_cnn()
    sections.append(
        plan_table(
            cnn,
            "Per-layer matvec plans (toy 2-conv CNN: conv-BN(folded)-PAF-"
            "pool-conv-dense on 1x8x8)",
        )
    )
    cnn_planned = measure_forward(cnn, 64, trace_path=_trace_to(trace_dir, "toy_cnn"))
    sections.append(
        format_table(
            _FORWARD_HEADER,
            [forward_row("planned", cnn_planned)],
            title="Measured op counts: one encrypted CNN forward "
            "(BSGS conv matvecs + hoisted rotate-and-sum pool)",
        )
    )
    models["toy_cnn"] = gate_metrics(cnn_planned)
    if check_backends:
        verify_backend_invariance(
            "toy_cnn", cnn.ctx, lambda: measure_forward(cnn, 64), models["toy_cnn"]
        )

    # --- toy ResNet: the sharded multi-ciphertext path (2 residual
    # blocks, stride-2 projection skip, channels across 2 ciphertexts) ---
    resnet = compiled_toy_resnet()
    sections.append(
        shard_plan_table(
            resnet,
            "Per-block matvec plans (toy 2-block ResNet: stem-block-block-"
            "pool-dense on 1x8x8, 2 shards)",
        )
    )
    resnet_planned = measure_forward_shards(
        resnet, 64, trace_path=_trace_to(trace_dir, "toy_resnet")
    )
    sections.append(
        format_table(
            _FORWARD_HEADER,
            [forward_row("planned", resnet_planned)],
            title="Measured op counts: one encrypted ResNet forward "
            "(sharded BSGS conv blocks + residual merges)",
        )
    )
    models["toy_resnet"] = gate_metrics(resnet_planned)
    if check_backends:
        verify_backend_invariance(
            "toy_resnet",
            resnet.ctx,
            lambda: measure_forward_shards(resnet, 64),
            models["toy_resnet"],
        )

    # --- toy transformer: the token-sharded attention + GELU MLP block
    # (qkv/o BSGS matvecs per token, PS-evaluated softmax exp, Newton
    # reciprocal normaliser, dense GELU) ---
    transformer = compiled_toy_transformer()
    sections.append(
        shard_plan_table(
            transformer,
            "Per-block matvec plans (toy transformer: single-head attention "
            "+ GELU MLP over 4 token shards, dim 8)",
        )
    )
    tfm_planned = measure_forward_shards(
        transformer, 32, trace_path=_trace_to(trace_dir, "toy_transformer")
    )
    sections.append(
        format_table(
            _FORWARD_HEADER,
            [forward_row("planned", tfm_planned)],
            title="Measured op counts: one encrypted transformer forward "
            "(sharded BSGS projections + PS softmax exp + Newton reciprocal)",
        )
    )
    models["toy_transformer"] = gate_metrics(tfm_planned)
    if check_backends:
        verify_backend_invariance(
            "toy_transformer",
            transformer.ctx,
            lambda: measure_forward_shards(transformer, 32),
            models["toy_transformer"],
        )

    # --- stacked transformer: the depth-wall demo — two blocks cost
    # ~64 raw levels against the same 33-level chain, so the compile
    # succeeds only through the auto refresh policy (one exactness-gated
    # recrypt refresh at the block boundary); its decrypt/encrypt counts
    # are the refresh's client-boundary cost, gated like everything else ---
    stacked = compiled_toy_transformer_stacked()
    stacked_planned = measure_forward_shards(
        stacked, 32, trace_path=_trace_to(trace_dir, "toy_transformer_stacked")
    )
    sections.append(
        format_table(
            _FORWARD_HEADER,
            [forward_row("planned", stacked_planned)],
            title="Measured op counts: one encrypted stacked-transformer "
            "forward (2 blocks + auto-placed recrypt refresh between them)",
        )
    )
    models["toy_transformer_stacked"] = gate_metrics(stacked_planned)
    if check_backends:
        verify_backend_invariance(
            "toy_transformer_stacked",
            stacked.ctx,
            lambda: measure_forward_shards(stacked, 32),
            models["toy_transformer_stacked"],
        )

    sections.append(activation_count_table())
    gate: dict = {"models": models}
    if check_backends:
        # record which backends the counts were verified invariant under
        gate["backends"] = available_backends()
    return "\n\n".join(sections), gate


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("outfile", nargs="?", help="write the text summary here")
    parser.add_argument(
        "--json", dest="json_path", help="write per-model gate metrics as JSON"
    )
    parser.add_argument(
        "--trace-dir",
        dest="trace_dir",
        help="write one repro-trace-v1 execution trace per model here "
        "(trace_<model>.json)",
    )
    parser.add_argument(
        "--check-backends",
        action="store_true",
        help="re-measure every forward under each registered kernel "
        "backend and fail unless the gate JSON is byte-identical",
    )
    args = parser.parse_args()
    summary, gate = build_summary(
        trace_dir=args.trace_dir, check_backends=args.check_backends
    )
    print(summary)
    if args.outfile:
        with open(args.outfile, "w") as fh:
            fh.write(summary + "\n")
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(gate, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
