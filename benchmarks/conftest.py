"""Benchmark configuration.

Each benchmark regenerates one paper table/figure (quick-scale by default;
``REPRO_SCALE=full`` for larger runs) and prints the same rows/series the
paper reports.  Heavy experiment runners use ``benchmark.pedantic`` with a
single round — the quantity of interest is the artefact, not microsecond
stability.
"""

import os

import pytest

# Ensure artefact directory exists for printed tables.
ART_DIR = os.path.join(os.path.dirname(__file__), "out")
os.makedirs(ART_DIR, exist_ok=True)


def save_artifact(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/out/."""
    print("\n" + text)
    with open(os.path.join(ART_DIR, name), "w") as fh:
        fh.write(text + "\n")


@pytest.fixture
def artifact():
    return save_artifact
