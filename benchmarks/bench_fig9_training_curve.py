"""Fig. 9 — training curve: baseline vs SMART-PAF (f1²∘g1²)."""

from repro.experiments.fig9 import print_fig9, run_fig9


def bench_fig9_training_curves(benchmark, artifact):
    result = benchmark.pedantic(lambda: run_fig9(seed=0), rounds=1, iterations=1)
    artifact("fig9.txt", print_fig9(result))
    # Shape: SMART-PAF's final accuracy >= the baseline strategy's.
    assert result["smartpaf"]["final"] >= result["baseline"]["final"] - 0.03
    # SMART-PAF's curve records progressive replacement events.
    labels = [e for _, e in result["smartpaf"]["events"]]
    assert any(label.startswith("replace:") for label in labels)
    assert any(label == "SWA" for label in labels)
